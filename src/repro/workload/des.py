"""Discrete-event simulation core.

A tiny process-oriented DES engine in the style of SimPy, built from scratch:

* the :class:`Simulator` owns a binary-heap event queue and the clock;
* a :class:`Process` wraps a Python generator that *yields effects*
  (:class:`Delay`, :class:`~repro.workload.resources.Acquire`, ...) and is
  resumed by the engine when each effect completes;
* an :class:`Effect` knows how to arrange its own completion — immediate
  effects resume the process synchronously, waiting effects park it until a
  resource or timer fires.

Determinism: events at equal timestamps are ordered by insertion sequence
number, so runs are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, Optional, Tuple

__all__ = ["Effect", "Delay", "Event", "Process", "Simulator"]


class Effect:
    """Something a process can yield to the engine.

    ``apply`` must either resume the process later (returning ``None``) or
    return ``(True, value)`` to indicate immediate completion with ``value``
    as the yield-expression result.
    """

    def apply(
        self, sim: "Simulator", process: "Process"
    ) -> Optional[Tuple[bool, object]]:
        raise NotImplementedError


class Delay(Effect):
    """Suspend the process for a fixed duration of simulated time."""

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.duration = float(duration)

    def apply(self, sim, process):
        sim.schedule(self.duration, process.resume)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Delay({self.duration})"


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (the heap entry is skipped)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{flag})"


class Process:
    """A generator-driven simulation process.

    The generator yields :class:`Effect` instances; the value of each yield
    expression is whatever the effect completes with (e.g. nothing for a
    delay).  When the generator returns, the process is finished and its
    optional ``on_complete`` callback fires.
    """

    _ids = itertools.count()

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Effect, object, None],
        name: str = "",
        on_complete: Optional[Callable[["Process"], None]] = None,
    ):
        self.sim = sim
        self.generator = generator
        self.pid = next(Process._ids)
        self.name = name or f"process-{self.pid}"
        self.on_complete = on_complete
        self.finished = False

    def resume(self, value: object = None) -> None:
        """Advance the generator, dispatching effects until one waits."""
        if self.finished:
            raise RuntimeError(f"{self.name} resumed after finishing")
        while True:
            try:
                effect = self.generator.send(value)
            except StopIteration:
                self.finished = True
                if self.on_complete is not None:
                    self.on_complete(self)
                return
            if not isinstance(effect, Effect):
                raise TypeError(
                    f"{self.name} yielded {effect!r}, which is not an Effect"
                )
            outcome = effect.apply(self.sim, self)
            if outcome is None:
                return  # parked; the effect will call resume() later
            _, value = outcome  # immediate effect: feed result back in

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "finished" if self.finished else "active"
        return f"Process({self.name}, {state})"


class Simulator:
    """Event loop: a clock plus a heap of pending events."""

    def __init__(self):
        self.now = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self.events_executed = 0
        self.processes_spawned = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = Event(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def spawn(
        self,
        generator: Generator[Effect, object, None],
        name: str = "",
        on_complete: Optional[Callable[[Process], None]] = None,
    ) -> Process:
        """Create a process and start it at the current time."""
        process = Process(self, generator, name=name, on_complete=on_complete)
        self.processes_spawned += 1
        self.schedule(0.0, process.resume)
        return process

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise RuntimeError(
                    f"event at t={event.time} is before now={self.now}"
                )
            self.now = event.time
            self.events_executed += 1
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Execute events up to and including ``end_time``.

        The clock finishes at exactly ``end_time`` even if the queue empties
        earlier, so measurement windows are well defined.
        """
        if end_time < self.now:
            raise ValueError(
                f"end_time {end_time} is before current time {self.now}"
            )
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time > end_time:
                break
            self.step()
        self.now = end_time

    def run(self, max_events: int = 1_000_000) -> None:
        """Drain the event queue; guards against runaway loops."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events}; "
                    "likely an unintended infinite event loop"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Simulator(now={self.now}, pending={self.pending}, "
            f"executed={self.events_executed})"
        )
