"""Sampling distributions for service times and inter-arrival gaps.

Thin, explicit wrappers over :class:`numpy.random.Generator` draws.  Each
distribution knows its analytic mean so the closed-form surrogate
(:mod:`repro.workload.analytic`) and the simulator can be parameterized from
the same objects.
"""

from __future__ import annotations

from typing import Dict, Sequence, Type, Union

import numpy as np

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Erlang",
    "Uniform",
    "LogNormal",
    "Hyperexponential",
    "Geometric",
    "get_distribution",
]


class Distribution:
    """Base class: draw non-negative durations from a generator."""

    name = "distribution"

    def sample(self, rng: np.random.Generator) -> float:
        """One draw."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic expectation of a draw."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.__dict__.items()))
        return f"{type(self).__name__}({args})"


class Deterministic(Distribution):
    """Always the same value — useful for tests and CPU quanta."""

    name = "deterministic"

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        self.value = float(value)

    def sample(self, rng):
        return self.value

    def mean(self):
        return self.value


class Exponential(Distribution):
    """Memoryless — the canonical model for Poisson arrivals."""

    name = "exponential"

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    def sample(self, rng):
        return float(rng.exponential(self._mean))

    def mean(self):
        return self._mean


class Erlang(Distribution):
    """Sum of ``k`` exponentials: smoother than exponential (CV = 1/sqrt(k)).

    A good model for CPU bursts, which are far less variable than
    memoryless.
    """

    name = "erlang"

    def __init__(self, mean: float, k: int = 4):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._mean = float(mean)
        self.k = int(k)

    def sample(self, rng):
        return float(rng.gamma(self.k, self._mean / self.k))

    def mean(self):
        return self._mean


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    name = "uniform"

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng):
        return float(rng.uniform(self.low, self.high))

    def mean(self):
        return 0.5 * (self.low + self.high)


class LogNormal(Distribution):
    """Heavy-ish right tail — typical of database call latencies.

    Parameterized by the desired mean and the shape ``sigma`` of the
    underlying normal; ``mu`` is derived so the distribution's mean matches.
    """

    name = "lognormal"

    def __init__(self, mean: float, sigma: float = 0.5):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self._mean = float(mean)
        self.sigma = float(sigma)
        self._mu = np.log(mean) - 0.5 * sigma * sigma

    def sample(self, rng):
        return float(rng.lognormal(self._mu, self.sigma))

    def mean(self):
        return self._mean


class Hyperexponential(Distribution):
    """Mixture of exponentials: high variability (CV > 1), bimodal work."""

    name = "hyperexponential"

    def __init__(self, means: Sequence[float], weights: Sequence[float]):
        means = [float(m) for m in means]
        weights = [float(w) for w in weights]
        if len(means) != len(weights) or not means:
            raise ValueError("means and weights must be equal-length, non-empty")
        if any(m <= 0 for m in means):
            raise ValueError(f"means must be positive, got {means}")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError(f"weights must be non-negative and sum > 0")
        total = sum(weights)
        self.means = means
        self.weights = [w / total for w in weights]

    def sample(self, rng):
        branch = rng.choice(len(self.means), p=self.weights)
        return float(rng.exponential(self.means[branch]))

    def mean(self):
        return float(sum(w * m for w, m in zip(self.weights, self.means)))


class Geometric(Distribution):
    """Geometric counts on {1, 2, ...} with mean ``1/p`` — batch sizes."""

    name = "geometric"

    def __init__(self, p: float):
        if not 0 < p <= 1:
            raise ValueError(f"p must lie in (0, 1], got {p}")
        self.p = float(p)

    def sample(self, rng):
        return float(rng.geometric(self.p))

    def mean(self):
        return 1.0 / self.p


_REGISTRY: Dict[str, Type[Distribution]] = {
    cls.name: cls
    for cls in (
        Deterministic,
        Exponential,
        Erlang,
        Uniform,
        LogNormal,
        Hyperexponential,
        Geometric,
    )
}


def get_distribution(spec: Union[str, Distribution], **kwargs) -> Distribution:
    """Resolve a distribution from a name or instance."""
    if isinstance(spec, Distribution):
        if kwargs:
            raise ValueError("cannot pass kwargs with a Distribution instance")
        return spec
    if spec not in _REGISTRY:
        raise KeyError(
            f"unknown distribution {spec!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[spec](**kwargs)
