"""The middle-tier application server.

This is the component the paper tunes: "Inside the application server,
different thread counts can be assigned to three different queues modeling
the work flow including an mfg queue that models the manufacturing domain, a
web queue for modeling the web front end, and a default queue which handles
the rest" (Section 4).

An :class:`AppServer` owns the three thread pools, the shared multicore CPU,
the inventory lock and a reference to the database tier, and exposes
:meth:`handle` — the generator flow one transaction follows through the
server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

import numpy as np

from .cpu import Execute, MultiCoreCpu
from .database import Database
from .des import Delay, Effect, Simulator
from .resources import Acquire, Release, Resource
from .transactions import (
    DEFAULT_QUEUE,
    MFG_QUEUE,
    WEB_QUEUE,
    Transaction,
)

__all__ = ["MachineSpec", "AppServer"]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware model of the middle-tier machine.

    The defaults mirror the paper's Table 1 testbed — 4 Intel Xeon dual-core
    3.4 GHz processors (8 cores; we fold Hyper-Threading into per-core
    throughput rather than doubling the core count), 1 MB L2 per core,
    16 GB RAM.  Cache and memory sizes are documentation; what the simulator
    consumes are the scheduling parameters.
    """

    cores: int = 8
    #: Round-robin quantum (seconds).
    quantum: float = 0.020
    #: Base context-switch cost per dispatch (seconds).
    switch_cost: float = 0.0003
    #: Extra switch cost per runnable thread beyond the core count.
    pollution_factor: float = 0.4
    #: Saturation bound on the excess-runnable pollution term.
    excess_cap: int = 10
    #: Documented, not simulated.
    l2_cache_mb_per_core: float = 1.0
    memory_gb: float = 16.0

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")
        if self.switch_cost < 0:
            raise ValueError(
                f"switch_cost must be non-negative, got {self.switch_cost}"
            )
        if self.pollution_factor < 0:
            raise ValueError(
                f"pollution_factor must be non-negative, got {self.pollution_factor}"
            )
        if self.excess_cap < 0:
            raise ValueError(
                f"excess_cap must be non-negative, got {self.excess_cap}"
            )


class AppServer:
    """Three work queues sharing one multicore CPU.

    Parameters
    ----------
    sim:
        The owning simulator.
    database:
        The backend tier used for synchronous calls.
    mfg_threads, web_threads, default_threads:
        The configured thread counts — the paper's first three input
        parameters.  A configured value of 0 is clamped to one thread (the
        server never runs a queue with no worker; the paper's sweeps start
        at 0 with the same semantics).
    machine:
        Hardware model; defaults to the Table 1 testbed.
    rng:
        Random stream for service-time draws.
    mfg_database:
        Optional dedicated database partition for the manufacturing domain
        (defaults to the shared one).  SPECjAppServer-style workloads
        partition the manufacturing schema away from the dealer/order
        schema, which insulates manufacturing latency from dealer-side and
        background database pressure.
    request_timeout:
        Driver patience: a request still waiting for a work-queue thread
        after this long is abandoned (the paper's workload operates under
        "response time restrictions"; real load drivers time requests out).
        Abandonment bounds congestion, so saturated configurations degrade
        to a finite plateau instead of growing with the measurement window.
    """

    def __init__(
        self,
        sim: Simulator,
        database: Database,
        mfg_threads: int,
        web_threads: int,
        default_threads: int,
        machine: MachineSpec = None,
        rng: np.random.Generator = None,
        request_timeout: float = 0.3,
        mfg_database: Database = None,
    ):
        for name, value in (
            ("mfg_threads", mfg_threads),
            ("web_threads", web_threads),
            ("default_threads", default_threads),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        self.sim = sim
        self.database = database
        self.mfg_database = (
            mfg_database if mfg_database is not None else database
        )
        self.machine = machine if machine is not None else MachineSpec()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.cpu = MultiCoreCpu(
            sim,
            cores=self.machine.cores,
            quantum=self.machine.quantum,
            switch_cost=self.machine.switch_cost,
            pollution_factor=self.machine.pollution_factor,
            excess_cap=self.machine.excess_cap,
        )
        self.pools: Dict[str, Resource] = {
            MFG_QUEUE: Resource(sim, max(1, mfg_threads), name="mfg-queue"),
            WEB_QUEUE: Resource(sim, max(1, web_threads), name="web-queue"),
            DEFAULT_QUEUE: Resource(
                sim, max(1, default_threads), name="default-queue"
            ),
        }
        if request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        self.request_timeout = float(request_timeout)
        self.inventory_lock = Resource(sim, 1, name="inventory-lock")
        self.transactions_completed = 0
        self.transactions_abandoned = 0

    # ------------------------------------------------------------------

    def handle(self, txn: Transaction) -> Generator[Effect, object, None]:
        """The full middle-tier flow of one transaction.

        Web-interaction classes (``domain_queue is None``) run end to end on
        one web-queue thread: parsing/session CPU, client I/O, business CPU,
        lock section and database calls.  Two-stage classes release the web
        thread after the front-end work and run the business stage on their
        domain queue; background classes (``has_web_stage=False``) skip the
        front end entirely.
        """
        cls = txn.txn_class
        sim = self.sim

        if cls.has_web_stage:
            granted = yield Acquire(
                self.pools[WEB_QUEUE], timeout=self.request_timeout
            )
            if not granted:
                txn.abandoned_at = sim.now
                self.transactions_abandoned += 1
                return
            txn.stage_times["web_start"] = sim.now
            yield Execute(self.cpu, cls.web_cpu.sample(self._rng))
            yield Delay(cls.web_io.sample(self._rng))
            if cls.domain_queue is None:
                # Business work rides the web thread.
                yield from self._business(txn)
            yield Release(self.pools[WEB_QUEUE])
            txn.stage_times["web_end"] = sim.now

        if cls.domain_queue is not None:
            domain_pool = self.pools[cls.domain_queue]
            granted = yield Acquire(domain_pool, timeout=self.request_timeout)
            if not granted:
                txn.abandoned_at = sim.now
                self.transactions_abandoned += 1
                return
            txn.stage_times["domain_start"] = sim.now
            yield from self._business(txn)
            yield Release(domain_pool)
            txn.stage_times["domain_end"] = sim.now

        txn.completed_at = sim.now
        self.transactions_completed += 1

    def _business(self, txn: Transaction) -> Generator[Effect, object, None]:
        """Business CPU burst, optional lock section, database calls.

        Lock-holding classes keep the inventory lock across their database
        work (read-modify-write on stock rows), the transactional pattern
        that makes purchase latency so sensitive to admitted concurrency.
        """
        cls = txn.txn_class
        database = (
            self.mfg_database if cls.db_partition == "mfg" else self.database
        )
        yield Execute(self.cpu, cls.domain_cpu.sample(self._rng))
        if cls.uses_inventory_lock:
            yield Acquire(self.inventory_lock)
            yield Execute(self.cpu, cls.lock_cpu.sample(self._rng))
            for _ in range(cls.db_calls):
                yield from database.call(cls.db_service)
            yield Release(self.inventory_lock)
        else:
            for _ in range(cls.db_calls):
                yield from database.call(cls.db_service)

    # ------------------------------------------------------------------

    def pool_utilization(self, queue: str) -> float:
        """Time-averaged utilization of one work queue's threads."""
        return self.pools[queue].utilization()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {name: pool.capacity for name, pool in self.pools.items()}
        return f"AppServer(pools={sizes}, cores={self.machine.cores})"
