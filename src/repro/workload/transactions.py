"""Transaction classes of the 3-tier web-service workload.

The paper's workload "models the transactions among a manufacturing company,
its clients and suppliers" and reports four response-time indicators:
manufacturing, dealer purchase, dealer manage, and dealer browse autos
(Section 4).  We model those four classes explicitly, in the style of the
SPECjAppServer family the description matches:

* **dealer** transactions (purchase / manage / browse) are web
  interactions: one web-queue thread carries the request end to end —
  parsing, session work, client I/O, business logic and the synchronous
  database calls;
* **manufacturing** work orders pass through the web front end and then run
  their business stage on the dedicated mfg queue;
* a **miscellaneous** background class (work-order scheduling, supplier
  traffic — "the rest") runs on the default queue, is injected directly
  (no web front end), has no response-time indicator of its own, but counts
  toward effective throughput.  This is why the paper's Figure 7 valley
  floor passes through default = 0: dealer response times never *require*
  default threads; the default queue couples to them only through shared
  CPU;
* dealer *purchase* transactions additionally serialize on a shared
  inventory lock (order/stock consistency), the classic app-server
  scalability hazard.

Each class carries a response-time constraint ("the workload itself ...
specifies four response time constraints"); the throughput indicator counts
only transactions meeting their constraint — effective transactions per
second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .distributions import Distribution, Erlang, Hyperexponential, LogNormal, Uniform

__all__ = [
    "MFG_QUEUE",
    "WEB_QUEUE",
    "DEFAULT_QUEUE",
    "TransactionClass",
    "Transaction",
    "standard_mix",
]

#: Queue identifiers (the paper's three work queues).
MFG_QUEUE = "mfg"
WEB_QUEUE = "web"
DEFAULT_QUEUE = "default"

_DOMAIN_QUEUES = (MFG_QUEUE, DEFAULT_QUEUE)


@dataclass(frozen=True)
class TransactionClass:
    """Static description of one transaction type."""

    #: Class name; also the response-time indicator label.
    name: str
    #: Fraction of the injected load belonging to this class.
    mix_weight: float
    #: CPU burst in the web front-end stage (seconds); unused when the
    #: class skips the web front end.
    web_cpu: Distribution
    #: Non-CPU time holding the web thread (client/network I/O, session).
    web_io: Distribution
    #: Which queue runs the business stage: ``mfg``, ``default``, or ``None``
    #: when the business work runs inside the web-queue thread itself.
    domain_queue: Optional[str]
    #: CPU burst in the business stage.
    domain_cpu: Distribution
    #: Database service time per call (the domain thread is held throughout).
    db_service: Distribution
    #: Number of synchronous database calls in the business stage.
    db_calls: int
    #: Response-time constraint (seconds); feeds effective throughput.
    deadline: float
    #: Whether the business stage serializes on the shared inventory lock.
    uses_inventory_lock: bool = False
    #: CPU burst executed while holding the inventory lock.
    lock_cpu: Optional[Distribution] = None
    #: Whether the transaction enters through the web front end.
    has_web_stage: bool = True
    #: Which database partition serves this class: the shared dealer/order
    #: store or the manufacturing domain's own partition.
    db_partition: str = "shared"

    def __post_init__(self):
        if not 0.0 < self.mix_weight <= 1.0:
            raise ValueError(
                f"mix_weight must lie in (0, 1], got {self.mix_weight}"
            )
        if self.domain_queue is not None and self.domain_queue not in _DOMAIN_QUEUES:
            raise ValueError(
                f"domain_queue must be one of {_DOMAIN_QUEUES} or None, "
                f"got {self.domain_queue!r}"
            )
        if not self.has_web_stage and self.domain_queue is None:
            raise ValueError(
                f"{self.name}: a class must have a web stage, a domain "
                "queue, or both"
            )
        if self.db_partition not in ("shared", "mfg"):
            raise ValueError(
                f"db_partition must be 'shared' or 'mfg', "
                f"got {self.db_partition!r}"
            )
        if self.db_calls < 0:
            raise ValueError(f"db_calls must be non-negative, got {self.db_calls}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.uses_inventory_lock and self.lock_cpu is None:
            raise ValueError("uses_inventory_lock requires a lock_cpu distribution")

    def mean_cpu_demand(self) -> float:
        """Expected total CPU seconds per transaction (contention-free)."""
        demand = self.domain_cpu.mean()
        if self.has_web_stage:
            demand += self.web_cpu.mean()
        if self.uses_inventory_lock:
            demand += self.lock_cpu.mean()
        return demand

    def mean_business_hold(self) -> float:
        """Expected business-stage thread time: CPU + DB (contention-free)."""
        hold = self.domain_cpu.mean() + self.db_calls * self.db_service.mean()
        if self.uses_inventory_lock:
            hold += self.lock_cpu.mean()
        return hold

    def mean_web_hold(self) -> float:
        """Expected web-queue thread hold (contention-free).

        Classes whose business stage runs inside the web thread
        (``domain_queue is None``) hold it for the business work too.
        """
        if not self.has_web_stage:
            return 0.0
        hold = self.web_cpu.mean() + self.web_io.mean()
        if self.domain_queue is None:
            hold += self.mean_business_hold()
        return hold


@dataclass
class Transaction:
    """One in-flight, completed or abandoned request."""

    txn_class: TransactionClass
    arrived_at: float
    completed_at: Optional[float] = None
    #: Set when the driver abandoned the request (queue-wait timeout).
    abandoned_at: Optional[float] = None
    #: Per-stage timestamps for detailed latency breakdowns.
    stage_times: Dict[str, float] = field(default_factory=dict)

    @property
    def is_complete(self) -> bool:
        """Whether the transaction finished all stages (not abandoned)."""
        return self.completed_at is not None

    @property
    def is_abandoned(self) -> bool:
        """Whether the request timed out waiting for a thread."""
        return self.abandoned_at is not None

    @property
    def response_time(self) -> float:
        """End-to-end latency; raises if still in flight."""
        if self.completed_at is None:
            raise ValueError("transaction has not completed")
        return self.completed_at - self.arrived_at

    @property
    def met_deadline(self) -> bool:
        """Whether the response-time constraint was satisfied."""
        return self.response_time <= self.txn_class.deadline


def standard_mix(
    deadline_scale: float = 1.0,
) -> List[TransactionClass]:
    """The canonical five-class mix used throughout the experiments.

    Four indicator classes (manufacturing plus the three dealer
    interactions) and one background class on the default queue.  Parameters
    are chosen so that, on the 8-core reference machine at the paper's
    injection rate of 560 requests/s:

    * the web queue needs ~15 threads (sweeping web 14..22 crosses its knee),
    * the default queue needs ~9 threads (sweeping default 0..20 crosses its
      knee for the background class's deadline),
    * manufacturing fits comfortably in mfg = 16, and
    * base CPU demand is ~6.5 of 8 cores, so oversized pools push the
      machine into the contention regime.

    ``deadline_scale`` loosens (>1) or tightens (<1) every class's
    response-time constraint — useful for sensitivity studies.
    """
    if deadline_scale <= 0:
        raise ValueError(f"deadline_scale must be positive, got {deadline_scale}")
    dealer_common = dict(
        web_cpu=Hyperexponential(means=[0.0038, 0.022], weights=[0.85, 0.15]),
        web_io=Uniform(low=0.0115, high=0.0195),
        domain_queue=None,
        domain_cpu=Erlang(mean=0.0035, k=4),
        db_service=LogNormal(mean=0.010, sigma=0.4),
        db_calls=1,
    )
    return [
        TransactionClass(
            name="manufacturing",
            mix_weight=0.20,
            web_cpu=Erlang(mean=0.0045, k=4),
            web_io=Uniform(low=0.0115, high=0.0195),
            domain_queue=MFG_QUEUE,
            domain_cpu=Erlang(mean=0.014, k=4),
            db_service=LogNormal(mean=0.015, sigma=0.4),
            db_calls=2,
            deadline=0.180 * deadline_scale,
            db_partition="mfg",
        ),
        TransactionClass(
            name="dealer_purchase",
            mix_weight=0.12,
            deadline=0.140 * deadline_scale,
            uses_inventory_lock=True,
            lock_cpu=Erlang(mean=0.0012, k=2),
            **{**dealer_common, "db_service": LogNormal(mean=0.0065, sigma=0.4)},
        ),
        TransactionClass(
            name="dealer_manage",
            mix_weight=0.12,
            deadline=0.095 * deadline_scale,
            **dealer_common,
        ),
        TransactionClass(
            name="dealer_browse",
            mix_weight=0.31,
            deadline=0.115 * deadline_scale,
            **dealer_common,
        ),
        TransactionClass(
            name="misc_background",
            mix_weight=0.25,
            web_cpu=Erlang(mean=0.001, k=4),
            web_io=Uniform(low=0.001, high=0.002),
            domain_queue=DEFAULT_QUEUE,
            domain_cpu=Erlang(mean=0.003, k=4),
            db_service=LogNormal(mean=0.030, sigma=0.4),
            db_calls=2,
            deadline=0.095 * deadline_scale,
            has_web_stage=False,
        ),
    ]


def validate_mix(classes: Sequence[TransactionClass]) -> None:
    """Check that class weights form a probability mix."""
    if not classes:
        raise ValueError("transaction mix must contain at least one class")
    total = sum(c.mix_weight for c in classes)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"mix weights must sum to 1, got {total}")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate class names in mix: {names}")
