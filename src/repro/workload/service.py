"""Top-level facade: configure the 3-tier system, run it, collect indicators.

This module ties driver, application server and database together and
produces exactly the paper's 4-input / 5-output sample tuples:

inputs  ``(injection_rate, default_threads, mfg_threads, web_threads)``
outputs ``(manufacturing, dealer_purchase, dealer_manage, dealer_browse
response times; effective transactions per second)``

"As the workload has a steady state behavior, the averages of collected
counter values are used" (Section 4): a warm-up period is discarded and
indicators are averaged over the measurement window.  *Effective*
throughput counts only transactions that met their class's response-time
constraint, matching the paper's "response time restrictions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .appserver import AppServer, MachineSpec
from .database import Database
from .des import Simulator
from .driver import LoadDriver
from .rng import StreamRegistry
from .transactions import (
    DEFAULT_QUEUE,
    MFG_QUEUE,
    WEB_QUEUE,
    Transaction,
    TransactionClass,
    standard_mix,
)

__all__ = [
    "INPUT_NAMES",
    "OUTPUT_NAMES",
    "WorkloadConfig",
    "ClassStats",
    "WorkloadMetrics",
    "ThreeTierWorkload",
]

#: Input-parameter order used throughout the repo.  The paper's figure
#: captions use the tuple (injection rate, default queue, mfg queue,
#: web queue); we keep the same order.
INPUT_NAMES = ["injection_rate", "default_threads", "mfg_threads", "web_threads"]

#: Output-indicator order (the paper's four response times then throughput).
OUTPUT_NAMES = [
    "manufacturing_rt",
    "dealer_purchase_rt",
    "dealer_manage_rt",
    "dealer_browse_rt",
    "effective_tps",
]

#: Transaction-class name feeding each response-time indicator.
_RT_CLASS_FOR_OUTPUT = {
    "manufacturing_rt": "manufacturing",
    "dealer_purchase_rt": "dealer_purchase",
    "dealer_manage_rt": "dealer_manage",
    "dealer_browse_rt": "dealer_browse",
}


@dataclass(frozen=True)
class WorkloadConfig:
    """One point in the paper's 4-dimensional configuration space."""

    injection_rate: float
    default_threads: int
    mfg_threads: int
    web_threads: int

    def __post_init__(self):
        if self.injection_rate <= 0:
            raise ValueError(
                f"injection_rate must be positive, got {self.injection_rate}"
            )
        for name in ("default_threads", "mfg_threads", "web_threads"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)}"
                )

    def as_vector(self) -> np.ndarray:
        """The configuration as a float vector in :data:`INPUT_NAMES` order."""
        return np.array(
            [
                self.injection_rate,
                self.default_threads,
                self.mfg_threads,
                self.web_threads,
            ],
            dtype=float,
        )

    @classmethod
    def from_vector(cls, vector: Sequence[float]) -> "WorkloadConfig":
        """Inverse of :meth:`as_vector` (thread counts are rounded)."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (4,):
            raise ValueError(f"expected 4 values, got shape {vector.shape}")
        return cls(
            injection_rate=float(vector[0]),
            default_threads=int(round(vector[1])),
            mfg_threads=int(round(vector[2])),
            web_threads=int(round(vector[3])),
        )


@dataclass
class ClassStats:
    """Per-class latency statistics over the measurement window."""

    name: str
    completed: int
    mean_response_time: float
    p50: float
    p90: float
    p99: float
    deadline: float
    deadline_met: int

    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of completed transactions meeting the constraint."""
        return self.deadline_met / self.completed if self.completed else 0.0


@dataclass
class WorkloadMetrics:
    """Everything measured from one simulation run."""

    config: WorkloadConfig
    #: The five paper indicators, keyed by :data:`OUTPUT_NAMES`.
    indicators: Dict[str, float]
    per_class: Dict[str, ClassStats]
    injected: int
    completed: int
    abandoned: int
    effective_completed: int
    measurement_window: float
    #: Raw throughput (all completions/s) alongside the effective figure.
    raw_tps: float
    cpu_utilization: float
    pool_utilization: Dict[str, float]
    pool_mean_wait: Dict[str, float]
    events_executed: int = 0
    extras: Dict[str, float] = field(default_factory=dict)
    #: The measured-window transactions, kept only when the workload was
    #: created with ``collect_transactions=True`` (memory-heavy).
    transactions: Optional[List[Transaction]] = None

    def as_vector(self) -> np.ndarray:
        """The five indicators in :data:`OUTPUT_NAMES` order."""
        return np.array([self.indicators[k] for k in OUTPUT_NAMES], dtype=float)


class ThreeTierWorkload:
    """Runnable 3-tier system: driver + app server + database.

    Parameters
    ----------
    classes:
        Transaction mix; defaults to :func:`~repro.workload.transactions.standard_mix`.
    machine:
        Middle-tier hardware model (Table 1 testbed by default).
    db_connections:
        Shared (dealer/background) connection-pool size.
    mfg_db_connections:
        Manufacturing partition's connection-pool size.
    warmup:
        Simulated seconds discarded before measurement.
    duration:
        Simulated seconds of the measurement window.
    seed:
        Master seed; all stochastic streams derive from it.
    request_timeout:
        Driver patience before abandoning a queued request (seconds).
    collect_transactions:
        Keep the measured-window :class:`Transaction` records on the
        returned metrics (for latency breakdowns and tracing).
    fault_hook:
        Optional zero-argument callable wired into the
        :class:`~repro.workload.driver.LoadDriver`'s per-transaction
        injection site (chaos testing; see
        :class:`repro.reliability.faults.FaultPlan`).
    """

    def __init__(
        self,
        classes: Optional[Sequence[TransactionClass]] = None,
        machine: Optional[MachineSpec] = None,
        db_connections: int = 14,
        mfg_db_connections: int = 14,
        warmup: float = 4.0,
        duration: float = 16.0,
        seed: int = 0,
        request_timeout: float = 0.3,
        collect_transactions: bool = False,
        fault_hook=None,
    ):
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.classes = list(classes) if classes is not None else standard_mix()
        self.machine = machine if machine is not None else MachineSpec()
        self.db_connections = int(db_connections)
        self.mfg_db_connections = int(mfg_db_connections)
        self.warmup = float(warmup)
        self.duration = float(duration)
        self.seed = int(seed)
        self.request_timeout = float(request_timeout)
        self.collect_transactions = bool(collect_transactions)
        self.fault_hook = fault_hook

    # ------------------------------------------------------------------

    def run(
        self,
        config: WorkloadConfig,
        disturbances: Optional[Sequence] = None,
    ) -> WorkloadMetrics:
        """Simulate one configuration and return its measured indicators.

        ``disturbances`` (see :mod:`repro.workload.disturbances`) are
        scheduled onto the run; their onset times are relative to t = 0,
        i.e. include the warm-up.
        """
        sim = Simulator()
        streams = StreamRegistry(self.seed)
        database = Database(
            sim,
            connections=self.db_connections,
            rng=streams.stream("database"),
        )
        mfg_database = Database(
            sim,
            connections=self.mfg_db_connections,
            rng=streams.stream("mfg-database"),
        )
        server = AppServer(
            sim,
            database,
            mfg_threads=config.mfg_threads,
            web_threads=config.web_threads,
            default_threads=config.default_threads,
            machine=self.machine,
            rng=streams.stream("service-times"),
            request_timeout=self.request_timeout,
            mfg_database=mfg_database,
        )
        driver = LoadDriver(
            sim,
            self.classes,
            injection_rate=config.injection_rate,
            handler=server.handle,
            arrival_rng=streams.stream("arrivals"),
            mix_rng=streams.stream("mix"),
            fault_hook=self.fault_hook,
        )
        driver.start()
        if disturbances:
            from .disturbances import schedule_disturbances

            schedule_disturbances(disturbances, sim, server, driver)
        end_time = self.warmup + self.duration
        sim.run_until(end_time)
        driver.stop()
        return self._collect(sim, server, driver, config)

    # ------------------------------------------------------------------

    def _collect(
        self,
        sim: Simulator,
        server: AppServer,
        driver: LoadDriver,
        config: WorkloadConfig,
    ) -> WorkloadMetrics:
        """Aggregate indicators over transactions that *arrived* after warmup
        and completed before the simulation end."""
        window = self.duration
        measured: List[Transaction] = [
            t
            for t in driver.transactions
            if t.arrived_at >= self.warmup and t.is_complete
        ]
        abandoned = sum(
            1
            for t in driver.transactions
            if t.arrived_at >= self.warmup and t.is_abandoned
        )
        per_class: Dict[str, ClassStats] = {}
        effective = 0
        for cls in self.classes:
            rts = np.array(
                [t.response_time for t in measured if t.txn_class is cls]
            )
            met = sum(
                1
                for t in measured
                if t.txn_class is cls and t.met_deadline
            )
            effective += met
            if rts.size:
                per_class[cls.name] = ClassStats(
                    name=cls.name,
                    completed=int(rts.size),
                    mean_response_time=float(rts.mean()),
                    p50=float(np.percentile(rts, 50)),
                    p90=float(np.percentile(rts, 90)),
                    p99=float(np.percentile(rts, 99)),
                    deadline=cls.deadline,
                    deadline_met=int(met),
                )
            else:
                # A fully-starved class: every request timed out, so the
                # driver observed the request timeout as its latency.
                timeout = (
                    server.request_timeout
                    if hasattr(server, "request_timeout")
                    else window
                )
                per_class[cls.name] = ClassStats(
                    name=cls.name,
                    completed=0,
                    mean_response_time=float(timeout),
                    p50=float(timeout),
                    p90=float(timeout),
                    p99=float(timeout),
                    deadline=cls.deadline,
                    deadline_met=0,
                )
        # Mixes that lack one of the paper's four indicator classes
        # (e.g. trace-emitted scenarios, see :mod:`repro.traces`) fall
        # back to the mix-wide mean response time for that indicator, so
        # the 5-output sample shape survives any class list.
        if measured:
            overall_rt = float(
                np.mean([t.response_time for t in measured])
            )
        else:
            overall_rt = float(self.request_timeout)
        indicators = {
            output: (
                per_class[cls_name].mean_response_time
                if cls_name in per_class
                else overall_rt
            )
            for output, cls_name in _RT_CLASS_FOR_OUTPUT.items()
        }
        indicators["effective_tps"] = effective / window
        pool_util = {
            name: pool.utilization() for name, pool in server.pools.items()
        }
        pool_wait = {
            name: (
                pool.total_wait_time / pool.total_acquisitions
                if pool.total_acquisitions
                else 0.0
            )
            for name, pool in server.pools.items()
        }
        return WorkloadMetrics(
            config=config,
            indicators=indicators,
            per_class=per_class,
            injected=driver.injected,
            completed=len(measured),
            abandoned=abandoned,
            effective_completed=effective,
            measurement_window=window,
            raw_tps=len(measured) / window,
            cpu_utilization=server.cpu.utilization(),
            pool_utilization=pool_util,
            pool_mean_wait=pool_wait,
            events_executed=sim.events_executed,
            transactions=list(measured) if self.collect_transactions else None,
            extras={
                "cpu_total_overhead": server.cpu.total_overhead,
                "cpu_dispatches": float(server.cpu.total_dispatches),
                "db_mean_service": server.database.mean_service_time(),
                "lock_mean_wait": (
                    server.inventory_lock.total_wait_time
                    / server.inventory_lock.total_acquisitions
                    if server.inventory_lock.total_acquisitions
                    else 0.0
                ),
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ThreeTierWorkload(classes={len(self.classes)}, "
            f"warmup={self.warmup}, duration={self.duration}, seed={self.seed})"
        )
