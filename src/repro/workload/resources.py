"""Counted resources with FIFO queueing: thread pools, connection pools, locks.

A :class:`Resource` holds ``capacity`` interchangeable tokens.  Processes
yield :class:`Acquire` to obtain a token (waiting in FIFO order when none is
free) and :class:`Release` to return it.  The resource records the queueing
statistics the workload model needs: time spent waiting for a token and the
time-averaged number of busy tokens (i.e. busy threads).

The application server's *work queues* (paper Section 4: the mfg, web and
default queues) are Resources whose capacity is the configured thread count —
exactly the tunable the paper's model takes as input.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .des import Effect, Event, Process, Simulator

__all__ = ["Resource", "Acquire", "Release"]


class _Waiter:
    """Queue entry: the parked process plus its timeout bookkeeping."""

    __slots__ = ("process", "enqueued_at", "timeout_event", "abandoned")

    def __init__(self, process: Process, enqueued_at: float):
        self.process = process
        self.enqueued_at = enqueued_at
        self.timeout_event: Optional[Event] = None
        self.abandoned = False


class Resource:
    """A pool of ``capacity`` tokens with a FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self.in_use = 0
        self._waiters: Deque[_Waiter] = deque()
        # statistics
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.total_abandonments = 0
        self.max_queue_length = 0
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self._last_change = sim.now

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _advance_integrals(self) -> None:
        elapsed = self.sim.now - self._last_change
        if elapsed > 0:
            self._busy_integral += elapsed * self.in_use
            self._queue_integral += elapsed * len(self._waiters)
        self._last_change = self.sim.now

    def mean_busy(self, horizon: Optional[float] = None) -> float:
        """Time-averaged number of tokens in use over ``[0, horizon]``."""
        self._advance_integrals()
        horizon = self.sim.now if horizon is None else horizon
        return self._busy_integral / horizon if horizon > 0 else 0.0

    def mean_queue_length(self, horizon: Optional[float] = None) -> float:
        """Time-averaged number of waiting processes."""
        self._advance_integrals()
        horizon = self.sim.now if horizon is None else horizon
        return self._queue_integral / horizon if horizon > 0 else 0.0

    def utilization(self, horizon: Optional[float] = None) -> float:
        """``mean_busy / capacity`` (0 for a zero-capacity pool)."""
        if self.capacity == 0:
            return 0.0
        return self.mean_busy(horizon) / self.capacity

    @property
    def queue_length(self) -> int:
        """Processes currently waiting for a token."""
        return len(self._waiters)

    @property
    def available(self) -> int:
        """Free tokens right now."""
        return self.capacity - self.in_use

    # ------------------------------------------------------------------
    # engine interface (used by the Acquire/Release effects)
    # ------------------------------------------------------------------

    def _request(
        self, process: Process, timeout: Optional[float] = None
    ) -> Optional[bool]:
        """Grant a token now (True), or enqueue the process (None).

        When ``timeout`` is given and elapses before a token is granted,
        the waiter abandons the queue and the process resumes with False.
        """
        if self.capacity == 0:
            raise RuntimeError(
                f"resource {self.name!r} has zero capacity; "
                "acquiring would block forever"
            )
        self._advance_integrals()
        if self.in_use < self.capacity and not self._waiters:
            self.in_use += 1
            self.total_acquisitions += 1
            return True
        waiter = _Waiter(process, self.sim.now)
        if timeout is not None:
            waiter.timeout_event = self.sim.schedule(
                timeout, lambda waiter=waiter: self._abandon(waiter)
            )
        self._waiters.append(waiter)
        self.max_queue_length = max(self.max_queue_length, len(self._waiters))
        return None

    def _abandon(self, waiter: _Waiter) -> None:
        """Timeout fired: drop the waiter and resume it empty-handed."""
        if waiter.abandoned:
            return
        waiter.abandoned = True
        self._advance_integrals()
        try:
            self._waiters.remove(waiter)
        except ValueError:  # pragma: no cover - defensive; granted already
            return
        self.total_abandonments += 1
        self.total_wait_time += self.sim.now - waiter.enqueued_at
        self.sim.schedule(0.0, lambda: waiter.process.resume(False))

    def _release(self) -> None:
        """Return a token; hand it straight to the next waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"release of {self.name!r} with none in use")
        self._advance_integrals()
        if self._waiters:
            waiter = self._waiters.popleft()
            if waiter.timeout_event is not None:
                waiter.timeout_event.cancel()
            self.total_wait_time += self.sim.now - waiter.enqueued_at
            self.total_acquisitions += 1
            # The token passes directly to the waiter; in_use is unchanged.
            self.sim.schedule(0.0, lambda: waiter.process.resume(True))
        else:
            self.in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} busy, "
            f"{len(self._waiters)} waiting)"
        )


class Acquire(Effect):
    """Yielded by a process to obtain one token of ``resource``.

    The yield expression evaluates to True when the token was granted and —
    only possible when ``timeout`` is set — False when the wait was
    abandoned.  Callers without a timeout may ignore the value.
    """

    def __init__(self, resource: Resource, timeout: Optional[float] = None):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.resource = resource
        self.timeout = timeout

    def apply(self, sim, process):
        if self.resource._request(process, timeout=self.timeout):
            return (True, True)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Acquire({self.resource.name!r}, timeout={self.timeout})"


class Release(Effect):
    """Yielded by a process to return one token of ``resource``.

    Completes immediately; a waiting process (if any) is scheduled to run at
    the current simulation time rather than re-entered synchronously, which
    keeps the call stack flat.
    """

    def __init__(self, resource: Resource):
        self.resource = resource

    def apply(self, sim, process):
        self.resource._release()
        return (True, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Release({self.resource.name!r})"
