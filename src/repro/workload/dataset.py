"""Sample collections: (configuration, indicators) tuples.

"A set of training samples are collected by running the identical
application under various configurations; each sample amounts to one
specific configuration and the performance of the application under the
configuration" (paper Section 2.2).  A :class:`Dataset` is that collection —
an ``(n, 4)`` configuration matrix ``x`` and an ``(n, 5)`` indicator matrix
``y`` with named columns — plus CSV persistence so expensively-simulated
collections can be reused across experiments.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from .service import INPUT_NAMES, OUTPUT_NAMES, WorkloadConfig

__all__ = ["Dataset"]


class Dataset:
    """An immutable-by-convention sample collection with named columns."""

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        input_names: Optional[Sequence[str]] = None,
        output_names: Optional[Sequence[str]] = None,
    ):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 2:
            raise ValueError(
                f"x and y must be 2-D, got shapes {x.shape} and {y.shape}"
            )
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} samples but y has {y.shape[0]}"
            )
        self.x = x
        self.y = y
        self.input_names = list(input_names or INPUT_NAMES[: x.shape[1]])
        self.output_names = list(output_names or OUTPUT_NAMES[: y.shape[1]])
        if len(self.input_names) != x.shape[1]:
            raise ValueError(
                f"{len(self.input_names)} input names for {x.shape[1]} columns"
            )
        if len(self.output_names) != y.shape[1]:
            raise ValueError(
                f"{len(self.output_names)} output names for {y.shape[1]} columns"
            )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of configuration parameters."""
        return self.x.shape[1]

    @property
    def n_outputs(self) -> int:
        """Number of performance indicators."""
        return self.y.shape[1]

    def configs(self) -> List[WorkloadConfig]:
        """Rows of ``x`` as :class:`WorkloadConfig` (4-input datasets only)."""
        if self.n_inputs != 4:
            raise ValueError(
                f"configs() requires 4 input columns, dataset has {self.n_inputs}"
            )
        return [WorkloadConfig.from_vector(row) for row in self.x]

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A new dataset containing only ``indices`` (in the given order)."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            self.x[indices],
            self.y[indices],
            input_names=self.input_names,
            output_names=self.output_names,
        )

    def concat(self, other: "Dataset") -> "Dataset":
        """Stack two datasets with identical schemas."""
        if self.input_names != other.input_names:
            raise ValueError("input schemas differ")
        if self.output_names != other.output_names:
            raise ValueError("output schemas differ")
        return Dataset(
            np.vstack([self.x, other.x]),
            np.vstack([self.y, other.y]),
            input_names=self.input_names,
            output_names=self.output_names,
        )

    def output_column(self, name: str) -> np.ndarray:
        """One indicator column by name."""
        try:
            index = self.output_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown output {name!r}; have {self.output_names}"
            ) from None
        return self.y[:, index]

    def input_column(self, name: str) -> np.ndarray:
        """One configuration column by name."""
        try:
            index = self.input_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown input {name!r}; have {self.input_names}"
            ) from None
        return self.x[:, index]

    def summary(self) -> str:
        """Per-column ranges — a quick sanity view of a collection."""
        lines = [f"Dataset: {len(self)} samples"]
        for j, name in enumerate(self.input_names):
            col = self.x[:, j]
            lines.append(
                f"  input  {name}: min={col.min():g} max={col.max():g} "
                f"mean={col.mean():g}"
            )
        for j, name in enumerate(self.output_names):
            col = self.y[:, j]
            lines.append(
                f"  output {name}: min={col.min():g} max={col.max():g} "
                f"mean={col.mean():g}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save_csv(self, path: Union[str, Path]) -> Path:
        """Write the collection as one CSV with a header row."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [f"x:{n}" for n in self.input_names]
                + [f"y:{n}" for n in self.output_names]
            )
            for xi, yi in zip(self.x, self.y):
                writer.writerow([repr(float(v)) for v in xi] + [repr(float(v)) for v in yi])
        return path

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "Dataset":
        """Inverse of :meth:`save_csv`."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            input_names = [h[2:] for h in header if h.startswith("x:")]
            output_names = [h[2:] for h in header if h.startswith("y:")]
            if not input_names or not output_names:
                raise ValueError(f"{path} is not a Dataset CSV (bad header)")
            rows = [list(map(float, row)) for row in reader if row]
        if not rows:
            raise ValueError(f"{path} contains no samples")
        data = np.asarray(rows, dtype=float)
        n_in = len(input_names)
        return cls(
            data[:, :n_in],
            data[:, n_in:],
            input_names=input_names,
            output_names=output_names,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(n={len(self)}, inputs={self.input_names}, "
            f"outputs={self.output_names})"
        )
