"""First-order capacity planning from the transaction mix.

Before running any experiment, a performance engineer can bound the system
with operational laws: offered load × mean hold time gives the busy-thread
demand of each pool (Little's law), and summed CPU demands give core
utilization.  This module mechanizes that arithmetic for a transaction mix:

* per-pool busy-thread estimates and the *knee* (the smallest pool size
  with a configurable headroom margin),
* CPU and database utilization estimates,
* bottleneck identification for a concrete configuration,
* the maximum sustainable injection rate.

These are contention-free first-order numbers — the simulator exists
precisely because the interesting behavior (valleys, hills) lives beyond
them — but they bracket the sensible configuration space and seed the
experiment designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .appserver import MachineSpec
from .service import WorkloadConfig
from .transactions import (
    DEFAULT_QUEUE,
    MFG_QUEUE,
    WEB_QUEUE,
    TransactionClass,
    standard_mix,
)

__all__ = ["PoolDemand", "CapacityReport", "CapacityPlanner"]


@dataclass(frozen=True)
class PoolDemand:
    """Little's-law demand on one thread pool."""

    pool: str
    #: Mean concurrently-busy threads (offered load x hold time).
    busy_threads: float
    #: Smallest pool size with the planner's headroom margin.
    recommended_size: int

    def utilization(self, configured: int) -> float:
        """Estimated utilization at a configured size."""
        if configured < 1:
            configured = 1
        return self.busy_threads / configured


@dataclass
class CapacityReport:
    """All first-order demands for a mix at one injection rate."""

    injection_rate: float
    pools: Dict[str, PoolDemand]
    cpu_cores_demanded: float
    cpu_utilization: float
    db_connections_demanded: Dict[str, float]
    max_injection_rate: float
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Readable planning summary."""
        lines = [
            f"Capacity plan at injection rate {self.injection_rate:g}/s",
            f"  CPU: {self.cpu_cores_demanded:.2f} cores demanded "
            f"({100 * self.cpu_utilization:.0f}% of the machine)",
        ]
        for name in sorted(self.pools):
            demand = self.pools[name]
            lines.append(
                f"  {name + ' pool:':15s} {demand.busy_threads:5.1f} busy "
                f"threads -> size >= {demand.recommended_size}"
            )
        for partition, connections in sorted(
            self.db_connections_demanded.items()
        ):
            lines.append(
                f"  db[{partition}]:      {connections:5.1f} connections busy"
            )
        lines.append(
            f"  first-order max injection rate: "
            f"{self.max_injection_rate:.0f}/s"
        )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


class CapacityPlanner:
    """Operational-law estimates for a transaction mix on a machine.

    Parameters
    ----------
    classes:
        The transaction mix (defaults to the canonical five-class mix).
    machine:
        The middle-tier hardware model.
    headroom:
        Target utilization ceiling used for pool sizing: a pool is sized so
        its estimated utilization stays below this (0.8 by default —
        conservative sizing; the simulator shows the true knee).
    """

    def __init__(
        self,
        classes: Optional[Sequence[TransactionClass]] = None,
        machine: Optional[MachineSpec] = None,
        headroom: float = 0.8,
    ):
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must lie in (0, 1], got {headroom}")
        self.classes = list(classes) if classes is not None else standard_mix()
        self.machine = machine if machine is not None else MachineSpec()
        self.headroom = float(headroom)

    # ------------------------------------------------------------------
    # demand components
    # ------------------------------------------------------------------

    def pool_busy_threads(self, pool: str, injection_rate: float) -> float:
        """Little's-law busy threads for one pool at ``injection_rate``."""
        busy = 0.0
        for cls in self.classes:
            rate = injection_rate * cls.mix_weight
            if pool == WEB_QUEUE and cls.has_web_stage:
                busy += rate * cls.mean_web_hold()
            elif pool in (MFG_QUEUE, DEFAULT_QUEUE) and cls.domain_queue == pool:
                busy += rate * cls.mean_business_hold()
        return busy

    def cpu_cores(self, injection_rate: float) -> float:
        """Contention-free CPU demand in cores."""
        return sum(
            injection_rate * cls.mix_weight * cls.mean_cpu_demand()
            for cls in self.classes
        )

    def db_connections(self, injection_rate: float) -> Dict[str, float]:
        """Busy connections per database partition."""
        demands: Dict[str, float] = {}
        for cls in self.classes:
            rate = injection_rate * cls.mix_weight
            busy = rate * cls.db_calls * cls.db_service.mean()
            demands[cls.db_partition] = demands.get(cls.db_partition, 0.0) + busy
        return demands

    def max_injection_rate(self) -> float:
        """Rate at which CPU demand reaches the headroom ceiling.

        The CPU is the only resource whose capacity is fixed (pools and
        connection pools are configurable), so it defines the first-order
        throughput wall.
        """
        per_txn_cpu = sum(
            cls.mix_weight * cls.mean_cpu_demand() for cls in self.classes
        )
        if per_txn_cpu <= 0:
            raise ValueError("mix has no CPU demand; rate is unbounded")
        return self.headroom * self.machine.cores / per_txn_cpu

    # ------------------------------------------------------------------

    def plan(self, injection_rate: float) -> CapacityReport:
        """Full first-order report for one injection rate."""
        if injection_rate <= 0:
            raise ValueError(
                f"injection_rate must be positive, got {injection_rate}"
            )
        pools = {}
        for pool in (WEB_QUEUE, MFG_QUEUE, DEFAULT_QUEUE):
            busy = self.pool_busy_threads(pool, injection_rate)
            recommended = max(1, int(-(-busy // self.headroom)))  # ceil
            pools[pool] = PoolDemand(
                pool=pool, busy_threads=busy, recommended_size=recommended
            )
        cores = self.cpu_cores(injection_rate)
        utilization = cores / self.machine.cores
        notes = []
        if utilization > self.headroom:
            notes.append(
                "CPU demand exceeds the headroom ceiling; expect contention "
                "inflation and deadline misses"
            )
        return CapacityReport(
            injection_rate=float(injection_rate),
            pools=pools,
            cpu_cores_demanded=cores,
            cpu_utilization=utilization,
            db_connections_demanded=self.db_connections(injection_rate),
            max_injection_rate=self.max_injection_rate(),
            notes=notes,
        )

    def bottleneck(self, config: WorkloadConfig) -> str:
        """The most utilized resource at a concrete configuration.

        Returns one of ``"cpu"``, ``"web"``, ``"mfg"``, ``"default"`` — the
        resource whose first-order utilization is highest, i.e. the knob to
        turn first.
        """
        rate = config.injection_rate
        utilizations = {
            "cpu": self.cpu_cores(rate) / self.machine.cores,
            WEB_QUEUE: self.pool_busy_threads(WEB_QUEUE, rate)
            / max(1, config.web_threads),
            MFG_QUEUE: self.pool_busy_threads(MFG_QUEUE, rate)
            / max(1, config.mfg_threads),
            DEFAULT_QUEUE: self.pool_busy_threads(DEFAULT_QUEUE, rate)
            / max(1, config.default_threads),
        }
        return max(utilizations, key=utilizations.get)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CapacityPlanner(classes={len(self.classes)}, "
            f"headroom={self.headroom})"
        )
