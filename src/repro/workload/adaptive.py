"""Adaptive (uncertainty-guided) sample collection.

The paper's economics again: measured configurations are the expensive
resource.  Space-filling designs spend them uniformly; this module spends
them where the model is *unsure*.  Each round fits an ensemble to the
samples so far, scores a candidate pool by ensemble disagreement, simulates
the most-disputed candidates, and repeats — active learning on top of the
paper's own machinery, converging on the cliffs and knees that dominate the
prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..models.ensemble import NeuralEnsemble
from .dataset import Dataset
from .sampler import ConfigSpace, SampleCollector, latin_hypercube, random_design
from .service import WorkloadConfig

__all__ = ["AdaptiveRound", "AdaptiveResult", "AdaptiveSampler"]


@dataclass(frozen=True)
class AdaptiveRound:
    """Bookkeeping for one acquisition round."""

    round_index: int
    n_samples_after: int
    mean_candidate_spread: float
    picked: List[WorkloadConfig]


@dataclass
class AdaptiveResult:
    """The collected dataset plus per-round telemetry."""

    dataset: Dataset
    rounds: List[AdaptiveRound] = field(default_factory=list)

    def to_text(self) -> str:
        """Round-by-round disagreement trace."""
        lines = ["round  samples  mean candidate spread"]
        for r in self.rounds:
            lines.append(
                f"{r.round_index:5d}  {r.n_samples_after:7d} "
                f"{100 * r.mean_candidate_spread:18.2f}%"
            )
        return "\n".join(lines)


class AdaptiveSampler:
    """Uncertainty-guided sampling loop.

    Parameters
    ----------
    backend:
        Anything :class:`~repro.workload.sampler.SampleCollector` accepts
        (the simulator or the analytic surrogate).
    space:
        The configuration region to explore.
    ensemble_factory:
        Builds a fresh unfitted :class:`~repro.models.ensemble.NeuralEnsemble`
        per round; a fast 3-member default if omitted.
    n_initial:
        Latin-hypercube samples collected before the loop starts.
    batch_size:
        Configurations acquired per round.
    n_candidates:
        Random candidate pool scored per round.
    diversity:
        Minimum normalized distance between an acquired candidate and every
        already-measured configuration.  Pure uncertainty-chasing resamples
        the same cliff corner; the distance floor forces each batch to keep
        covering the space while still favouring disputed regions.
    seed:
        Design/candidate randomness.
    """

    def __init__(
        self,
        backend,
        space: ConfigSpace,
        ensemble_factory: Optional[Callable[[], NeuralEnsemble]] = None,
        n_initial: int = 12,
        batch_size: int = 4,
        n_candidates: int = 200,
        diversity: float = 0.12,
        seed: int = 0,
    ):
        if n_initial < 4:
            raise ValueError(f"n_initial must be >= 4, got {n_initial}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if n_candidates < batch_size:
            raise ValueError(
                f"n_candidates {n_candidates} < batch_size {batch_size}"
            )
        self.collector = SampleCollector(backend)
        self.space = space
        self.ensemble_factory = ensemble_factory or (
            lambda: NeuralEnsemble(
                n_members=3,
                seed=seed,
                hidden=(12,),
                error_threshold=0.01,
                max_epochs=3000,
            )
        )
        if diversity < 0:
            raise ValueError(f"diversity must be non-negative, got {diversity}")
        self.n_initial = int(n_initial)
        self.batch_size = int(batch_size)
        self.n_candidates = int(n_candidates)
        self.diversity = float(diversity)
        self.seed = int(seed)

    def collect(self, budget: int) -> AdaptiveResult:
        """Spend ``budget`` total simulations: initial design + rounds."""
        if budget < self.n_initial + self.batch_size:
            raise ValueError(
                f"budget {budget} below n_initial + one batch "
                f"({self.n_initial + self.batch_size})"
            )
        configs = latin_hypercube(self.space, self.n_initial, seed=self.seed)
        dataset = self.collector.collect(configs)
        result = AdaptiveResult(dataset=dataset)

        round_index = 0
        while len(result.dataset) + self.batch_size <= budget:
            round_index += 1
            ensemble = self.ensemble_factory()
            targets = np.log(np.maximum(result.dataset.y, 1e-6))
            ensemble.fit(result.dataset.x, targets)

            candidates = random_design(
                self.space,
                self.n_candidates,
                seed=self.seed + 1000 * round_index,
            )
            matrix = np.vstack([c.as_vector() for c in candidates])
            prediction = ensemble.predict_with_uncertainty(matrix)
            spread = prediction.relative_spread.max(axis=1)
            order = np.argsort(-spread)
            picked = self._pick_diverse(
                [candidates[int(i)] for i in order], result.dataset
            )
            if not picked:
                break
            acquired = self.collector.collect(picked)
            result.dataset = result.dataset.concat(acquired)
            result.rounds.append(
                AdaptiveRound(
                    round_index=round_index,
                    n_samples_after=len(result.dataset),
                    mean_candidate_spread=float(spread.mean()),
                    picked=picked,
                )
            )
        return result

    def _pick_diverse(
        self, ranked: List[WorkloadConfig], dataset: Dataset
    ) -> List[WorkloadConfig]:
        """Greedy max-spread picks subject to the diversity floor."""
        spans = np.array(
            [max(r.high - r.low, 1e-12) for r in self.space.ranges]
        )
        kept_points = [row / spans for row in dataset.x]
        picked: List[WorkloadConfig] = []
        for config in ranked:
            if len(picked) >= self.batch_size:
                break
            point = config.as_vector() / spans
            distance = min(
                (float(np.linalg.norm(point - other)) for other in kept_points),
                default=np.inf,
            )
            if distance >= self.diversity:
                picked.append(config)
                kept_points.append(point)
        return picked
