"""Fast closed-form surrogate of the 3-tier workload.

A queueing-network approximation of :class:`~repro.workload.service.ThreeTierWorkload`
for bulk parameter sweeps where the discrete-event simulator would be
overkill (batched arrivals and driver abandonment are not modeled — the
surrogate tracks the simulator's mean behaviour in the stable region and
its qualitative shape near saturation): each thread pool is an M/M/c station (Erlang-C waiting), the CPU
contention inflation is resolved by a small fixed-point iteration over the
same pollution model the simulator uses, and the inventory lock is an M/M/1
station.  It runs ~10^4x faster than the DES and matches its qualitative
shape (knees, valleys, hills); the fidelity bench
(``benchmarks/bench_surrogate.py``) quantifies the agreement.

The surrogate deliberately shares no code with the simulator: agreement
between the two is evidence against implementation bugs in either.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from .appserver import MachineSpec
from .service import OUTPUT_NAMES, WorkloadConfig
from .transactions import MFG_QUEUE, TransactionClass, standard_mix

__all__ = ["erlang_c_wait", "AnalyticWorkloadModel"]

#: Utilizations above this are treated as saturated; the station reports a
#: large, smoothly-growing penalty latency instead of a divergent one.
_MAX_UTILIZATION = 0.995

#: Cap on any single station's reported wait (seconds).  A saturated open
#: system measured over a finite window reports a finite latency; this cap
#: mirrors the simulator's measurement window.
_MAX_WAIT = 8.0

#: Allen-Cunneen variability correction for the CPU station: bursts are
#: Erlang-4 (squared CV 0.25), so M/M/c overestimates their queueing by
#: roughly (1 + 0.25) / 2.
_CPU_CV_CORRECTION = 0.625

#: The thread-pool caps make the CPU effectively a *closed* station: when it
#: backs up, queueing shifts to pool admission and the ready queue stays
#: short.  An open M/M/c treatment therefore overestimates both the average
#: runnable excess and the per-burst wait; these factors (calibrated against
#: the discrete-event simulator) discount them.
_CONTENTION_SCALE = 0.6
_CPU_WAIT_WEIGHT = 0.3


def erlang_c_wait(arrival_rate: float, service_time: float, servers: int) -> float:
    """Mean waiting time in an M/M/c queue (Erlang-C).

    Saturated stations (utilization >= ~1) return a finite pseudo-wait that
    keeps growing with the overload factor, mirroring how a fixed
    measurement window reports a saturated system.
    """
    if arrival_rate < 0 or service_time < 0:
        raise ValueError("arrival_rate and service_time must be non-negative")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if arrival_rate == 0 or service_time == 0:
        return 0.0
    offered = arrival_rate * service_time  # Erlangs
    rho = offered / servers
    if rho >= _MAX_UTILIZATION:
        # Overloaded: report a pseudo-wait proportional to the excess work
        # accumulated over a nominal window, as a finite-window measurement
        # would.  Continuity at rho == _MAX_UTILIZATION is not needed; the
        # regime change is real.
        overload = offered - _MAX_UTILIZATION * servers
        return min(service_time * (20.0 + 50.0 * overload), _MAX_WAIT)
    # Erlang-C probability of waiting, computed with a numerically stable
    # running sum.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered / k
        total += term
    term *= offered / servers
    p_wait = term / (1 - rho) / (total + term / (1 - rho))
    return min(p_wait * service_time / (servers * (1 - rho)), _MAX_WAIT)


class AnalyticWorkloadModel:
    """Closed-form 4-input / 5-output performance model.

    Parameters mirror :class:`~repro.workload.service.ThreeTierWorkload`:
    the same transaction mix and machine spec drive both, so a configuration
    can be evaluated by either backend interchangeably.
    """

    def __init__(
        self,
        classes: Optional[Sequence[TransactionClass]] = None,
        machine: Optional[MachineSpec] = None,
        db_connections: int = 14,
        mfg_db_connections: int = 14,
    ):
        self.classes = list(classes) if classes is not None else standard_mix()
        self.machine = machine if machine is not None else MachineSpec()
        self.db_connections = int(db_connections)
        self.mfg_db_connections = int(mfg_db_connections)

    # ------------------------------------------------------------------

    def evaluate(self, config: WorkloadConfig) -> Dict[str, float]:
        """The five indicators for ``config`` (keys = ``OUTPUT_NAMES``)."""
        inflation = self._cpu_inflation(config)
        per_class_rt = {
            cls.name: self._class_response_time(cls, config, inflation)
            for cls in self.classes
        }
        effective = 0.0
        for cls in self.classes:
            rate = config.injection_rate * cls.mix_weight
            effective += rate * self._deadline_probability(
                per_class_rt[cls.name], cls.deadline
            )
        return {
            "manufacturing_rt": per_class_rt["manufacturing"],
            "dealer_purchase_rt": per_class_rt["dealer_purchase"],
            "dealer_manage_rt": per_class_rt["dealer_manage"],
            "dealer_browse_rt": per_class_rt["dealer_browse"],
            "effective_tps": effective,
        }

    def evaluate_vector(self, config: WorkloadConfig):
        """The indicators as a vector in ``OUTPUT_NAMES`` order."""
        import numpy as np

        values = self.evaluate(config)
        return np.array([values[name] for name in OUTPUT_NAMES])

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------

    def _pool_capacity(self, configured: int) -> int:
        """The simulator clamps zero-thread pools to one thread; match it."""
        return max(1, configured)

    def _class_rate(self, cls: TransactionClass, config: WorkloadConfig) -> float:
        return config.injection_rate * cls.mix_weight

    @staticmethod
    def _bursts_per_txn(cls: TransactionClass) -> float:
        """CPU bursts one transaction issues (web + business + lock)."""
        bursts = 1.0  # business burst
        if cls.has_web_stage:
            bursts += 1.0
        if cls.uses_inventory_lock:
            bursts += 1.0
        return bursts

    def _cpu_inflation(self, config: WorkloadConfig) -> float:
        """Service-time inflation from context-switch/pollution overhead.

        Fixed point: the overhead depends on the runnable count, which
        depends on CPU congestion, which depends on the overhead.  Admission
        is capped by the configured pool sizes, so oversized pools raise the
        attainable runnable count — the mechanism behind the right-hand
        valley walls.
        """
        machine = self.machine
        total_rate = config.injection_rate
        # Mean CPU bursts per transaction and mean burst length.
        burst_rate = 0.0
        total_cpu = 0.0
        for cls in self.classes:
            rate = self._class_rate(cls, config)
            burst_rate += rate * self._bursts_per_txn(cls)
            total_cpu += rate * cls.mean_cpu_demand()
        mean_burst = total_cpu / burst_rate if burst_rate else 0.0
        # Admission cap on concurrently-runnable threads.
        cap = (
            self._pool_capacity(config.web_threads)
            + self._pool_capacity(config.mfg_threads)
            + self._pool_capacity(config.default_threads)
        )
        inflation = 1.0
        threshold = machine.cores // 2
        for _ in range(12):
            service = mean_burst * inflation
            wait = _CPU_CV_CORRECTION * erlang_c_wait(
                burst_rate, service, machine.cores
            )
            in_service = min(burst_rate * service, machine.cores)
            queued = burst_rate * wait
            runnable = min(in_service + queued, cap)
            excess = _CONTENTION_SCALE * min(
                max(0.0, runnable - threshold), float(machine.excess_cap)
            )
            overhead = machine.switch_cost * (
                1.0 + machine.pollution_factor * excess
            )
            target = 1.0 + overhead / mean_burst if mean_burst else 1.0
            new_inflation = 0.5 * (inflation + target)
            if abs(new_inflation - inflation) < 1e-9:
                inflation = new_inflation
                break
            inflation = new_inflation
        return inflation

    def _cpu_burst_response(self, burst: float, config: WorkloadConfig,
                            inflation: float) -> float:
        """Wall-clock time of one CPU burst: inflated service + CPU queueing."""
        machine = self.machine
        burst_rate = 0.0
        total_cpu = 0.0
        for cls in self.classes:
            rate = self._class_rate(cls, config)
            burst_rate += rate * self._bursts_per_txn(cls)
            total_cpu += rate * cls.mean_cpu_demand()
        mean_burst = (total_cpu / burst_rate if burst_rate else 0.0) * inflation
        wait = _CPU_CV_CORRECTION * erlang_c_wait(
            burst_rate, mean_burst, machine.cores
        )
        return burst * inflation + _CPU_WAIT_WEIGHT * wait

    def _class_response_time(
        self, cls: TransactionClass, config: WorkloadConfig, inflation: float
    ) -> float:
        """End-to-end latency for one class under the new routing.

        Web-interaction classes hold one web thread for front-end and
        business work; two-stage classes add a domain-queue visit;
        background classes only visit their domain queue.
        """
        lock_wait, lock_hold = self._lock_terms(config, inflation)
        total = 0.0
        if cls.has_web_stage:
            web_servers = self._pool_capacity(config.web_threads)
            web_rate = sum(
                self._class_rate(c, config)
                for c in self.classes
                if c.has_web_stage
            )
            web_hold = self._mean_web_hold(config, inflation, lock_wait, lock_hold)
            total += erlang_c_wait(web_rate, web_hold, web_servers)
            total += self._own_web_hold(cls, config, inflation, lock_wait, lock_hold)
        if cls.domain_queue is not None:
            if cls.domain_queue == MFG_QUEUE:
                servers = self._pool_capacity(config.mfg_threads)
            else:
                servers = self._pool_capacity(config.default_threads)
            domain_rate = sum(
                self._class_rate(c, config)
                for c in self.classes
                if c.domain_queue == cls.domain_queue
            )
            domain_hold = self._mean_domain_hold(
                cls.domain_queue, config, inflation, lock_wait, lock_hold
            )
            total += erlang_c_wait(domain_rate, domain_hold, servers)
            total += self._business_hold(cls, config, inflation, lock_wait, lock_hold)
        return total

    def _business_hold(
        self,
        cls: TransactionClass,
        config: WorkloadConfig,
        inflation: float,
        lock_wait: float,
        lock_hold: float,
    ) -> float:
        """Business CPU + lock + database time for one transaction."""
        hold = self._cpu_burst_response(
            cls.domain_cpu.mean(), config, inflation
        ) + cls.db_calls * self._db_call_time(config, cls)
        if cls.uses_inventory_lock:
            hold += lock_wait + lock_hold
        return hold

    def _own_web_hold(
        self,
        cls: TransactionClass,
        config: WorkloadConfig,
        inflation: float,
        lock_wait: float,
        lock_hold: float,
    ) -> float:
        """Time this class holds a web thread."""
        if not cls.has_web_stage:
            return 0.0
        hold = (
            self._cpu_burst_response(cls.web_cpu.mean(), config, inflation)
            + cls.web_io.mean()
        )
        if cls.domain_queue is None:
            hold += self._business_hold(cls, config, inflation, lock_wait, lock_hold)
        return hold

    def _mean_web_hold(
        self,
        config: WorkloadConfig,
        inflation: float,
        lock_wait: float,
        lock_hold: float,
    ) -> float:
        """Traffic-weighted mean web-thread hold across web classes."""
        total_weight = 0.0
        total = 0.0
        for cls in self.classes:
            if not cls.has_web_stage:
                continue
            total += cls.mix_weight * self._own_web_hold(
                cls, config, inflation, lock_wait, lock_hold
            )
            total_weight += cls.mix_weight
        return total / total_weight if total_weight else 0.0

    def _mean_domain_hold(
        self,
        queue: str,
        config: WorkloadConfig,
        inflation: float,
        lock_wait: float,
        lock_hold: float,
    ) -> float:
        """Traffic-weighted mean domain-thread hold for one queue."""
        total_weight = 0.0
        total = 0.0
        for cls in self.classes:
            if cls.domain_queue != queue:
                continue
            total += cls.mix_weight * self._business_hold(
                cls, config, inflation, lock_wait, lock_hold
            )
            total_weight += cls.mix_weight
        return total / total_weight if total_weight else 0.0

    def _db_call_time(
        self, config: WorkloadConfig, cls: Optional[TransactionClass] = None
    ) -> float:
        """Connection wait plus service for one database call.

        The wait comes from the blended traffic at the calling class's
        partition's connection pool; the service time is the class's own.
        """
        partition = cls.db_partition if cls is not None else "shared"
        members = [c for c in self.classes if c.db_partition == partition]
        pool = (
            self.mfg_db_connections
            if partition == "mfg"
            else self.db_connections
        )
        call_rate = sum(
            self._class_rate(c, config) * c.db_calls for c in members
        )
        blended_service = (
            sum(
                self._class_rate(c, config) * c.db_calls * c.db_service.mean()
                for c in members
            )
            / call_rate
            if call_rate
            else 0.0
        )
        wait = erlang_c_wait(call_rate, blended_service, pool)
        service = cls.db_service.mean() if cls is not None else blended_service
        return wait + service

    def _lock_terms(self, config: WorkloadConfig, inflation: float):
        """(wait, hold) for the inventory lock as an M/M/1 station."""
        lock_classes = [c for c in self.classes if c.uses_inventory_lock]
        if not lock_classes:
            return 0.0, 0.0
        rate = sum(self._class_rate(c, config) for c in lock_classes)
        hold = sum(
            self._class_rate(c, config)
            * self._cpu_burst_response(c.lock_cpu.mean(), config, inflation)
            for c in lock_classes
        ) / rate
        wait = erlang_c_wait(rate, hold, 1)
        return wait, hold

    @staticmethod
    def _deadline_probability(mean_rt: float, deadline: float) -> float:
        """P(response <= deadline) assuming an Erlang-2-shaped latency.

        An Erlang-2 tail (CV ~ 0.7) matches the simulator's observed
        latency variability better than a memoryless tail.
        """
        if mean_rt <= 0:
            return 1.0
        x = 2.0 * deadline / mean_rt
        return 1.0 - math.exp(-x) * (1.0 + x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalyticWorkloadModel(classes={len(self.classes)}, "
            f"db_connections={self.db_connections})"
        )
