"""The simulated 3-tier web-service testbed (paper Section 4 substitute).

A from-scratch discrete-event simulation of the paper's workload: an
open-loop Poisson driver, a middle-tier application server with three
configurable thread pools (mfg / web / default) scheduled on a finite
multicore CPU with contention overhead, and a connection-pooled database
tier.  Produces the paper's 4-input / 5-output samples; an analytic
queueing surrogate provides the same interface ~10^4x faster for bulk
sweeps.
"""

from .adaptive import AdaptiveResult, AdaptiveRound, AdaptiveSampler
from .analytic import AnalyticWorkloadModel, erlang_c_wait
from .appserver import AppServer, MachineSpec
from .breakdown import (
    ClassBreakdown,
    LatencyBreakdown,
    StageShare,
    breakdown,
)
from .capacity import CapacityPlanner, CapacityReport, PoolDemand
from .closedloop import ClosedLoopDriver
from .cpu import CpuJob, Execute, MultiCoreCpu
from .database import Database
from .dataset import Dataset
from .des import Delay, Effect, Event, Process, Simulator
from .disturbances import (
    CpuHog,
    DatabaseSlowdown,
    Disturbance,
    TrafficSurge,
)
from .distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Hyperexponential,
    LogNormal,
    Uniform,
    get_distribution,
)
from .driver import LoadDriver
from .resources import Acquire, Release, Resource
from .rng import StreamRegistry
from .scenarios import SCENARIOS, available_scenarios, scenario
from .sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    full_factorial,
    latin_hypercube,
    random_design,
)
from .service import (
    INPUT_NAMES,
    OUTPUT_NAMES,
    ClassStats,
    ThreeTierWorkload,
    WorkloadConfig,
    WorkloadMetrics,
)
from .timeline import Timeline, timeline_from_transactions
from .trace import ArrivalTrace, TraceDriver, record_trace
from .transactions import (
    DEFAULT_QUEUE,
    MFG_QUEUE,
    WEB_QUEUE,
    Transaction,
    TransactionClass,
    standard_mix,
)

__all__ = [
    # DES core
    "Simulator",
    "Process",
    "Event",
    "Effect",
    "Delay",
    # resources and CPU
    "Resource",
    "Acquire",
    "Release",
    "MultiCoreCpu",
    "CpuJob",
    "Execute",
    # tiers
    "Database",
    "AppServer",
    "MachineSpec",
    "LoadDriver",
    # transactions
    "TransactionClass",
    "Transaction",
    "standard_mix",
    "scenario",
    "available_scenarios",
    "SCENARIOS",
    "MFG_QUEUE",
    "WEB_QUEUE",
    "DEFAULT_QUEUE",
    # facade
    "ThreeTierWorkload",
    "WorkloadConfig",
    "WorkloadMetrics",
    "ClassStats",
    "INPUT_NAMES",
    "OUTPUT_NAMES",
    # surrogate
    "AnalyticWorkloadModel",
    "erlang_c_wait",
    # sampling
    "ConfigSpace",
    "ParameterRange",
    "full_factorial",
    "random_design",
    "latin_hypercube",
    "SampleCollector",
    "Dataset",
    # planning / alternative drivers
    "CapacityPlanner",
    "CapacityReport",
    "PoolDemand",
    "ClosedLoopDriver",
    # adaptive sampling / traces
    "AdaptiveSampler",
    "AdaptiveResult",
    "AdaptiveRound",
    "ArrivalTrace",
    "TraceDriver",
    "record_trace",
    # disturbances / timelines
    "Disturbance",
    "DatabaseSlowdown",
    "TrafficSurge",
    "CpuHog",
    "Timeline",
    "timeline_from_transactions",
    # diagnostics
    "breakdown",
    "LatencyBreakdown",
    "ClassBreakdown",
    "StageShare",
    # plumbing
    "StreamRegistry",
    "Distribution",
    "Deterministic",
    "Exponential",
    "Erlang",
    "Uniform",
    "LogNormal",
    "Hyperexponential",
    "get_distribution",
]
