"""The load driver (injection tier).

"The workload is composed of a driver to inject the load to the system"
(Section 4); the driver machine "is not CPU-bound", so we model it as an
ideal open-loop source: transactions arrive at the configured *injection
rate* — the paper's fourth input parameter — irrespective of how the system
under test is coping (no client-side back-pressure).  Arrivals come in
geometric **batches** (a page view issues several requests at once), which
makes admission depth matter: a larger thread pool swallows whole batches
into concurrent execution, where an exactly-sized pool paces them.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from .des import Simulator
from .distributions import Distribution, Geometric
from .transactions import Transaction, TransactionClass, validate_mix

__all__ = ["LoadDriver"]


class LoadDriver:
    """Open-loop Poisson injector over a transaction mix.

    Parameters
    ----------
    sim:
        The owning simulator.
    classes:
        Transaction mix; weights must sum to 1.
    injection_rate:
        Total arrivals per second across all classes.
    handler:
        Called with each new :class:`Transaction`; must return the generator
        flow to spawn (normally ``app_server.handle``).
    arrival_rng, mix_rng:
        Independent streams for inter-arrival gaps and class selection, so
        the arrival point process is identical across configurations (common
        random numbers).
    batch_size:
        Distribution of transactions per arrival batch for the *web-facing*
        classes (a page view issues several requests at once); the
        inter-batch gap is scaled so the transaction rate matches the mix.
        Background classes (``has_web_stage=False``) arrive as a smooth
        Poisson stream — they are machine-paced, not click-paced.  ``None``
        uses the default geometric batches with mean 2.
    fault_hook:
        Optional zero-argument callable fired before every spawned
        transaction — the driver's fault-injection site (see
        :meth:`repro.reliability.faults.FaultPlan.hook`).  An ``error``
        fault raised here models the injection tier itself failing.
    """

    def __init__(
        self,
        sim: Simulator,
        classes: Sequence[TransactionClass],
        injection_rate: float,
        handler: Callable[[Transaction], object],
        arrival_rng: np.random.Generator,
        mix_rng: np.random.Generator,
        batch_size: Distribution = None,
        fault_hook: Callable[[], None] = None,
    ):
        validate_mix(classes)
        if injection_rate <= 0:
            raise ValueError(
                f"injection_rate must be positive, got {injection_rate}"
            )
        self.sim = sim
        self.classes = list(classes)
        self.injection_rate = float(injection_rate)
        self.handler = handler
        self._arrival_rng = arrival_rng
        self._mix_rng = mix_rng
        self.batch_size = batch_size if batch_size is not None else Geometric(0.5)
        self.fault_hook = fault_hook
        self._web_classes = [c for c in self.classes if c.has_web_stage]
        self._background_classes = [
            c for c in self.classes if not c.has_web_stage
        ]
        web_weights = np.array([c.mix_weight for c in self._web_classes])
        self._web_share = float(web_weights.sum())
        self._web_weights = (
            web_weights / web_weights.sum() if web_weights.size else web_weights
        )
        self.transactions: List[Transaction] = []
        self.injected = 0
        self._stopped = False
        #: Multiplier on the injection rate; disturbances (traffic surges)
        #: raise it temporarily.
        self.rate_multiplier = 1.0

    def start(self) -> None:
        """Schedule the first arrival of each stream."""
        if self._web_classes:
            self._schedule_web_batch()
        for cls in self._background_classes:
            self._schedule_background(cls)

    def stop(self) -> None:
        """Stop injecting new transactions (in-flight ones continue)."""
        self._stopped = True

    def _spawn(self, cls: TransactionClass) -> None:
        if self.fault_hook is not None:
            self.fault_hook()
        txn = Transaction(txn_class=cls, arrived_at=self.sim.now)
        self.transactions.append(txn)
        self.injected += 1
        self.sim.spawn(
            self.handler(txn), name=f"txn-{self.injected}-{cls.name}"
        )

    # -------- web-facing stream: Poisson batches --------

    def _schedule_web_batch(self) -> None:
        txn_rate = self.injection_rate * self._web_share * self.rate_multiplier
        batch_rate = txn_rate / self.batch_size.mean()
        gap = self._arrival_rng.exponential(1.0 / batch_rate)
        self.sim.schedule(gap, self._inject_web_batch)

    def _inject_web_batch(self) -> None:
        if self._stopped:
            return
        count = max(1, int(round(self.batch_size.sample(self._arrival_rng))))
        for _ in range(count):
            index = self._mix_rng.choice(
                len(self._web_classes), p=self._web_weights
            )
            self._spawn(self._web_classes[index])
        self._schedule_web_batch()

    # -------- background streams: smooth Poisson per class --------

    def _schedule_background(self, cls: TransactionClass) -> None:
        rate = self.injection_rate * cls.mix_weight * self.rate_multiplier
        gap = self._arrival_rng.exponential(1.0 / rate)
        self.sim.schedule(gap, lambda cls=cls: self._inject_background(cls))

    def _inject_background(self, cls: TransactionClass) -> None:
        if self._stopped:
            return
        self._spawn(cls)
        self._schedule_background(cls)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LoadDriver(rate={self.injection_rate}, injected={self.injected})"
        )
