"""Named, reproducible random streams for the simulator.

Every stochastic component of the workload (arrivals, service times, class
mix, ...) draws from its own independently-seeded stream derived from one
master seed.  This keeps runs bit-reproducible and — more importantly for
experiments — lets one component's draw count change without perturbing the
randomness seen by every other component (common random numbers across
configurations).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["StreamRegistry"]


class StreamRegistry:
    """Factory of named :class:`numpy.random.Generator` streams.

    Streams are derived by spawning a child ``SeedSequence`` keyed on the
    stream name, so ``registry.stream("arrivals")`` is the same sequence for
    the same master seed regardless of which other streams exist or the
    order they were requested in.
    """

    def __init__(self, seed: int = 0):
        seed = int(seed)
        if seed < 0:
            # SeedSequence would otherwise reject this lazily at the first
            # stream() call with an opaque "expected non-negative integer",
            # far from the construction site that chose the seed.
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use."""
        if not name:
            raise ValueError("stream name must be non-empty")
        if name not in self._streams:
            # Hash the name into entropy so the stream depends only on
            # (seed, name), never on creation order.
            name_key = [ord(c) for c in name]
            sequence = np.random.SeedSequence(entropy=[self.seed, *name_key])
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def names(self) -> list:
        """Streams created so far, sorted."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamRegistry(seed={self.seed}, streams={self.names()})"
