"""The backend database tier.

The paper states that "the database server [is] not CPU-bound" and serves
purely as data storage, so we model it as a connection-pooled service
station: a database call acquires a connection, experiences a (lognormal)
service delay on the database machine, and releases the connection.  The
middle-tier domain thread stays held for the duration — the synchronous
JDBC-call pattern that makes thread-pool sizing interact with database
latency.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from .des import Delay, Effect, Simulator
from .distributions import Distribution
from .resources import Acquire, Release, Resource

__all__ = ["Database"]


class Database:
    """Connection-pooled, non-CPU-bound storage tier.

    Parameters
    ----------
    sim:
        The owning simulator.
    connections:
        Connection-pool capacity; sized generously by default since the
        paper's database tier is never the bottleneck.
    rng:
        Random stream for service-time draws.
    """

    def __init__(
        self,
        sim: Simulator,
        connections: int = 16,
        rng: np.random.Generator = None,
    ):
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        self.sim = sim
        self.pool = Resource(sim, connections, name="db-connections")
        self._rng = rng if rng is not None else np.random.default_rng()
        self.calls_served = 0
        self.total_service_time = 0.0
        #: Multiplier applied to every service draw; disturbances (e.g. a
        #: checkpoint stall or a noisy neighbour) raise it temporarily.
        self.slowdown_factor = 1.0

    def call(self, service: Distribution) -> Generator[Effect, object, None]:
        """One synchronous database call (a sub-flow to ``yield from``).

        Acquires a connection (FIFO wait if the pool is exhausted), holds it
        for a drawn service time, then releases it.
        """
        yield Acquire(self.pool)
        duration = service.sample(self._rng) * self.slowdown_factor
        yield Delay(duration)
        yield Release(self.pool)
        self.calls_served += 1
        self.total_service_time += duration

    def mean_service_time(self) -> float:
        """Average observed service time across all calls so far."""
        if self.calls_served == 0:
            return 0.0
        return self.total_service_time / self.calls_served

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Database(connections={self.pool.capacity}, "
            f"calls_served={self.calls_served})"
        )
