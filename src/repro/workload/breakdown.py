"""Per-transaction latency breakdown.

The response-time indicators answer *how slow*; a tuning engineer also needs
*where the time goes*.  This module decomposes completed transactions' end-
to-end latency into the stages the simulator records — web-queue wait, web
stage residence, domain-queue wait, business-stage residence — and
aggregates them per class, turning "dealer purchase is slow at this
configuration" into "dealer purchase spends 60 % of its time waiting for a
web thread".

Works on the ``stage_times`` stamps :class:`~repro.workload.appserver.AppServer`
leaves on every :class:`~repro.workload.transactions.Transaction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .transactions import Transaction

__all__ = ["StageShare", "ClassBreakdown", "LatencyBreakdown", "breakdown"]

#: Stage labels, in transaction order.
WEB_WAIT = "web_queue_wait"
WEB_STAGE = "web_stage"
DOMAIN_WAIT = "domain_queue_wait"
DOMAIN_STAGE = "domain_stage"

_STAGES = (WEB_WAIT, WEB_STAGE, DOMAIN_WAIT, DOMAIN_STAGE)


@dataclass(frozen=True)
class StageShare:
    """One stage's contribution to a class's mean latency."""

    stage: str
    mean_seconds: float
    share: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.stage}: {1000 * self.mean_seconds:.1f} ms ({100 * self.share:.0f}%)"


@dataclass
class ClassBreakdown:
    """Stage decomposition of one transaction class."""

    name: str
    transactions: int
    mean_response_time: float
    stages: List[StageShare]

    def dominant_stage(self) -> StageShare:
        """The stage carrying the largest share of the latency."""
        return max(self.stages, key=lambda s: s.share)

    def to_text(self) -> str:
        """One readable block per class."""
        lines = [
            f"{self.name}: {1000 * self.mean_response_time:.1f} ms mean over "
            f"{self.transactions} transactions"
        ]
        for stage in self.stages:
            bar = "#" * int(round(40 * stage.share))
            lines.append(
                f"  {stage.stage:18s} {1000 * stage.mean_seconds:8.1f} ms "
                f"{100 * stage.share:5.1f}%  {bar}"
            )
        return "\n".join(lines)


@dataclass
class LatencyBreakdown:
    """Stage decompositions for every class in a run."""

    per_class: Dict[str, ClassBreakdown] = field(default_factory=dict)

    def __getitem__(self, name: str) -> ClassBreakdown:
        return self.per_class[name]

    def __contains__(self, name: str) -> bool:
        return name in self.per_class

    def classes(self) -> List[str]:
        """Class names present, sorted."""
        return sorted(self.per_class)

    def to_text(self) -> str:
        """All classes' blocks."""
        return "\n\n".join(
            self.per_class[name].to_text() for name in self.classes()
        )


def _stage_durations(txn: Transaction) -> Optional[Dict[str, float]]:
    """Decompose one completed transaction; None if stamps are missing."""
    if not txn.is_complete:
        return None
    stamps = txn.stage_times
    durations = {stage: 0.0 for stage in _STAGES}
    cursor = txn.arrived_at
    if "web_start" in stamps:
        durations[WEB_WAIT] = stamps["web_start"] - cursor
        end = stamps.get("web_end", txn.completed_at)
        durations[WEB_STAGE] = end - stamps["web_start"]
        cursor = end
    if "domain_start" in stamps:
        durations[DOMAIN_WAIT] = stamps["domain_start"] - cursor
        end = stamps.get("domain_end", txn.completed_at)
        durations[DOMAIN_STAGE] = end - stamps["domain_start"]
    return durations


def breakdown(transactions: Iterable[Transaction]) -> LatencyBreakdown:
    """Aggregate per-stage latency over completed transactions.

    Transactions without completion (in flight or abandoned) are skipped.
    Shares are relative to each class's mean response time, so they sum to
    ~1 per class (exactly 1 when all stages are stamped).
    """
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    totals: Dict[str, float] = {}
    for txn in transactions:
        durations = _stage_durations(txn)
        if durations is None:
            continue
        name = txn.txn_class.name
        per_stage = sums.setdefault(name, {stage: 0.0 for stage in _STAGES})
        for stage, value in durations.items():
            per_stage[stage] += value
        counts[name] = counts.get(name, 0) + 1
        totals[name] = totals.get(name, 0.0) + txn.response_time

    result = LatencyBreakdown()
    for name, per_stage in sums.items():
        n = counts[name]
        mean_rt = totals[name] / n
        shares = []
        for stage in _STAGES:
            mean_stage = per_stage[stage] / n
            share = mean_stage / mean_rt if mean_rt > 0 else 0.0
            shares.append(
                StageShare(stage=stage, mean_seconds=mean_stage, share=share)
            )
        result.per_class[name] = ClassBreakdown(
            name=name,
            transactions=n,
            mean_response_time=mean_rt,
            stages=shares,
        )
    return result
