"""Closed-loop load driver: a fixed user population with think times.

The paper's driver injects at a fixed rate (open loop).  Real interactive
populations are *closed*: N users cycle through think -> request -> wait ->
think, so the offered load self-limits when the system slows — the other
canonical load model, provided for studies of how the loop discipline
changes the characterization (open-loop systems show unbounded queues at
saturation; closed-loop systems show response-time growth at bounded
throughput).

The driver reuses the same transaction mix and handler contract as
:class:`~repro.workload.driver.LoadDriver`, so it drops into
:class:`~repro.workload.service.ThreeTierWorkload`-style wiring.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from .des import Delay, Simulator
from .distributions import Distribution, Exponential
from .transactions import Transaction, TransactionClass, validate_mix

__all__ = ["ClosedLoopDriver"]


class ClosedLoopDriver:
    """``population`` users cycling with think times.

    Parameters
    ----------
    sim:
        The owning simulator.
    classes:
        Transaction mix; each request's class is drawn per cycle.
    population:
        Number of concurrent users (the closed population N).
    think_time:
        Think-time distribution Z; by the interactive response-time law the
        achievable throughput is bounded by ``N / (Z + R)``.
    handler:
        Returns the generator flow for a transaction (an app server's
        ``handle``).  The user waits for the flow to finish before thinking
        again; abandoned transactions end the wait too.
    think_rng, mix_rng:
        Independent random streams.
    """

    def __init__(
        self,
        sim: Simulator,
        classes: Sequence[TransactionClass],
        population: int,
        handler: Callable[[Transaction], object],
        think_rng: np.random.Generator,
        mix_rng: np.random.Generator,
        think_time: Distribution = None,
    ):
        validate_mix(classes)
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        self.sim = sim
        self.classes = list(classes)
        self.population = int(population)
        self.handler = handler
        self.think_time = (
            think_time if think_time is not None else Exponential(mean=0.1)
        )
        self._think_rng = think_rng
        self._mix_rng = mix_rng
        self._weights = np.array([c.mix_weight for c in self.classes])
        self._weights = self._weights / self._weights.sum()
        self.transactions: List[Transaction] = []
        self.injected = 0
        self._stopped = False

    def start(self) -> None:
        """Put every user into an initial (staggered) think."""
        for user in range(self.population):
            self.sim.spawn(self._user_loop(user), name=f"user-{user}")

    def stop(self) -> None:
        """Users finish their in-flight request and then retire."""
        self._stopped = True

    def throughput_bound(self, mean_response_time: float) -> float:
        """Interactive response-time law: X <= N / (Z + R)."""
        if mean_response_time < 0:
            raise ValueError("mean_response_time must be non-negative")
        return self.population / (self.think_time.mean() + mean_response_time)

    # ------------------------------------------------------------------

    def _user_loop(self, user: int):
        while not self._stopped:
            yield Delay(self.think_time.sample(self._think_rng))
            if self._stopped:
                return
            index = self._mix_rng.choice(len(self.classes), p=self._weights)
            txn = Transaction(
                txn_class=self.classes[index], arrived_at=self.sim.now
            )
            self.transactions.append(txn)
            self.injected += 1
            # Run the request inline: the user's generator delegates to the
            # server flow and resumes (thinks again) when it finishes.
            yield from self.handler(txn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClosedLoopDriver(population={self.population}, "
            f"injected={self.injected})"
        )
