"""Failure and load-disturbance injection.

Steady-state characterization assumes nothing changes mid-run; production
systems are not so polite.  A :class:`Disturbance` schedules a transient
change — a database stall, a CPU-stealing noisy neighbour, a traffic surge —
into a simulation, and the timeline metrics
(:mod:`repro.workload.timeline`) show how the indicators absorb and recover
from it.  Used for failure-injection tests and for studying how much
headroom a recommended configuration actually has.
"""

from __future__ import annotations

from typing import Sequence

from .appserver import AppServer
from .cpu import CpuJob
from .des import Process, Simulator
from .driver import LoadDriver

__all__ = [
    "Disturbance",
    "DatabaseSlowdown",
    "TrafficSurge",
    "CpuHog",
    "schedule_disturbances",
]


class Disturbance:
    """A transient change over ``[start, start + duration)``."""

    def __init__(self, start: float, duration: float):
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.start = float(start)
        self.duration = float(duration)

    def schedule(
        self, sim: Simulator, server: AppServer, driver: LoadDriver
    ) -> None:
        """Arrange the onset and recovery events."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(start={self.start}, "
            f"duration={self.duration})"
        )


class DatabaseSlowdown(Disturbance):
    """The shared database slows by ``factor`` (checkpoint, backup, noisy
    neighbour on the storage array).

    ``partition`` selects the shared or the manufacturing pool.
    """

    def __init__(
        self,
        start: float,
        duration: float,
        factor: float = 3.0,
        partition: str = "shared",
    ):
        super().__init__(start, duration)
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        if partition not in ("shared", "mfg"):
            raise ValueError(
                f"partition must be 'shared' or 'mfg', got {partition!r}"
            )
        self.factor = float(factor)
        self.partition = partition

    def schedule(self, sim, server, driver):
        database = (
            server.mfg_database if self.partition == "mfg" else server.database
        )

        def onset():
            database.slowdown_factor *= self.factor

        def recovery():
            database.slowdown_factor /= self.factor

        sim.schedule(self.start, onset)
        sim.schedule(self.start + self.duration, recovery)


class TrafficSurge(Disturbance):
    """Injection rate multiplies by ``multiplier`` for the interval."""

    def __init__(self, start: float, duration: float, multiplier: float = 1.5):
        super().__init__(start, duration)
        if multiplier <= 0:
            raise ValueError(
                f"multiplier must be positive, got {multiplier}"
            )
        self.multiplier = float(multiplier)

    def schedule(self, sim, server, driver):
        def onset():
            driver.rate_multiplier *= self.multiplier

        def recovery():
            driver.rate_multiplier /= self.multiplier

        sim.schedule(self.start, onset)
        sim.schedule(self.start + self.duration, recovery)


class CpuHog(Disturbance):
    """A co-located process burns ``cores`` cores' worth of CPU.

    Implemented as ``cores`` synthetic jobs of ``duration`` CPU-seconds
    each, submitted at onset — under round-robin they occupy roughly that
    much capacity for the interval and then drain.
    """

    def __init__(self, start: float, duration: float, cores: int = 2):
        super().__init__(start, duration)
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.cores = int(cores)

    def schedule(self, sim, server, driver):
        def onset():
            for index in range(self.cores):
                def hog():
                    from .cpu import Execute

                    yield Execute(server.cpu, self.duration)

                sim.spawn(hog(), name=f"cpu-hog-{self.start}-{index}")

        sim.schedule(self.start, onset)


def schedule_disturbances(
    disturbances: Sequence[Disturbance],
    sim: Simulator,
    server: AppServer,
    driver: LoadDriver,
) -> None:
    """Arrange every disturbance on a freshly-built simulation."""
    for disturbance in disturbances:
        if not isinstance(disturbance, Disturbance):
            raise TypeError(f"{disturbance!r} is not a Disturbance")
        disturbance.schedule(sim, server, driver)
