"""Text rendering of figures (no plotting libraries offline).

The paper's figures are regenerated as data plus terminal-friendly views:

* :func:`render_surface` — a shaded character grid of a response surface
  (the 3-D diagrams of Figures 4/7/8 seen from above),
* :func:`render_series` — the actual-vs-predicted scatter columns of
  Figures 5/6 as aligned text,
* :func:`surface_to_csv` / :func:`series_to_csv` — machine-readable dumps
  for external plotting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from .surface import ResponseSurface

__all__ = [
    "render_surface",
    "render_series",
    "surface_to_csv",
    "series_to_csv",
]

#: Shading ramp from low to high.
_RAMP = " .:-=+*#%@"


def render_surface(
    surface: ResponseSurface,
    width: Optional[int] = None,
    invert: bool = False,
) -> str:
    """A top-down shaded view of the surface, dark = low, bright = high.

    ``invert=True`` flips the ramp, which reads better for response-time
    valleys (the valley floor shows bright).
    """
    z = surface.z
    low, high = float(z.min()), float(z.max())
    span = high - low
    ramp = _RAMP[::-1] if invert else _RAMP
    lines = [
        f"{surface.indicator} over ({surface.row_param} x {surface.col_param}) "
        f"fixed={surface.fixed}",
        f"z range: {low:g} .. {high:g}",
    ]
    header = " " * 8 + "".join(
        f"{v:g}"[:6].rjust(7) for v in surface.col_values
    )
    lines.append(header)
    for i, row_value in enumerate(surface.row_values):
        cells = []
        for j in range(surface.col_values.size):
            if span <= 0:
                level = 0
            else:
                level = int((z[i, j] - low) / span * (len(ramp) - 1))
            cells.append(ramp[level] * 3)
        lines.append(f"{row_value:7g} " + "  ".join(f" {c}" for c in cells))
    return "\n".join(lines)


def render_series(
    actual: np.ndarray,
    predicted: np.ndarray,
    title: str = "",
    width: int = 60,
) -> str:
    """Figures 5/6 style: per-sample actual ('o') vs predicted ('x') lanes.

    Each sample index gets one text row; the two markers are placed along a
    shared horizontal value axis (coinciding markers render as '*').
    """
    actual = np.asarray(actual, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    if actual.shape != predicted.shape:
        raise ValueError(
            f"actual has {actual.size} points, predicted {predicted.size}"
        )
    if actual.size == 0:
        raise ValueError("nothing to render")
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    low = float(min(actual.min(), predicted.min()))
    high = float(max(actual.max(), predicted.max()))
    span = high - low or 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"value axis: {low:g} .. {high:g}   o=actual x=predicted")
    for index, (a, p) in enumerate(zip(actual, predicted)):
        lane = [" "] * (width + 1)
        a_pos = int((a - low) / span * width)
        p_pos = int((p - low) / span * width)
        lane[a_pos] = "o"
        lane[p_pos] = "*" if p_pos == a_pos else "x"
        lines.append(f"{index + 1:3d} |" + "".join(lane) + "|")
    return "\n".join(lines)


def surface_to_csv(
    surface: ResponseSurface, path: Union[str, Path]
) -> Path:
    """Write the surface as long-format CSV (row, col, z)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        handle.write(
            f"{surface.row_param},{surface.col_param},{surface.indicator}\n"
        )
        for i, row_value in enumerate(surface.row_values):
            for j, col_value in enumerate(surface.col_values):
                handle.write(
                    f"{row_value!r},{col_value!r},{surface.z[i, j]!r}\n"
                )
    return path


def series_to_csv(
    actual: np.ndarray,
    predicted: np.ndarray,
    path: Union[str, Path],
    labels: Optional[Sequence[str]] = None,
) -> Path:
    """Write actual/predicted columns (multi-output supported) as CSV."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.ndim == 1:
        actual = actual.reshape(-1, 1)
    if predicted.ndim == 1:
        predicted = predicted.reshape(-1, 1)
    if actual.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {actual.shape} vs {predicted.shape}"
        )
    names = list(labels or [f"output_{j}" for j in range(actual.shape[1])])
    if len(names) != actual.shape[1]:
        raise ValueError(
            f"{len(names)} labels for {actual.shape[1]} outputs"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        header = ["sample"] + [
            f"{n}_{kind}" for n in names for kind in ("actual", "predicted")
        ]
        handle.write(",".join(header) + "\n")
        for index in range(actual.shape[0]):
            cells = [str(index + 1)]
            for j in range(actual.shape[1]):
                cells.append(repr(float(actual[index, j])))
                cells.append(repr(float(predicted[index, j])))
            handle.write(",".join(cells) + "\n")
    return path
