"""Curvature analysis: the surface taxonomy from second derivatives.

:mod:`repro.analysis.topology` classifies a *grid*; this module classifies
the model's local geometry analytically-ish: the 2x2 Hessian of one
indicator with respect to two swept parameters (central differences of the
network's exact input Jacobian) and its eigen-decomposition give, at any
point,

* **bowl** (both eigenvalues > 0) — a valley cross-section,
* **dome** (both < 0) — a hill,
* **saddle** (mixed signs),
* **flat** (both ~ 0),

plus the principal direction — for a valley, the direction its trough runs,
which is the "adjust two parameters concurrently" vector the paper's
Section 5.2 tuning advice asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..models.neural import NeuralWorkloadModel
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES
from .attribution import attribute

__all__ = ["LocalCurvature", "hessian", "local_curvature"]

#: Eigenvalue magnitudes below this fraction of the largest are "zero".
_FLAT_FRACTION = 0.05


@dataclass
class LocalCurvature:
    """Second-order geometry of one indicator at one point."""

    indicator: str
    point: np.ndarray
    params: Tuple[str, str]
    hessian: np.ndarray  # (2, 2)
    gradient: np.ndarray  # (2,)
    eigenvalues: np.ndarray  # ascending
    eigenvectors: np.ndarray  # columns, matching eigenvalues

    @property
    def kind(self) -> str:
        """bowl / dome / saddle / flat."""
        scale = float(np.abs(self.eigenvalues).max())
        if scale == 0.0:
            return "flat"
        small = _FLAT_FRACTION * scale
        signs = [
            0 if abs(v) < small else (1 if v > 0 else -1)
            for v in self.eigenvalues
        ]
        if all(s == 0 for s in signs):
            return "flat"
        if any(s > 0 for s in signs) and any(s < 0 for s in signs):
            return "saddle"
        if all(s >= 0 for s in signs):
            return "bowl"
        return "dome"

    @property
    def trough_direction(self) -> np.ndarray:
        """Unit vector along the *least curved* axis.

        For a bowl this is the valley's running direction — the paper's
        "stay in the valley" move; for a dome, the ridge direction.
        """
        index = int(np.argmin(np.abs(self.eigenvalues)))
        direction = self.eigenvectors[:, index]
        return direction / np.linalg.norm(direction)

    def to_text(self) -> str:
        """One readable block."""
        a, b = self.params
        direction = self.trough_direction
        return (
            f"{self.indicator} at ({a}={self.point_value(a):g}, "
            f"{b}={self.point_value(b):g}): {self.kind}; "
            f"eigenvalues {self.eigenvalues[0]:.3g}, "
            f"{self.eigenvalues[1]:.3g}; "
            f"least-curved direction ({direction[0]:+.2f} {a}, "
            f"{direction[1]:+.2f} {b})"
        )

    def point_value(self, name: str) -> float:
        """The full 4-D point's value for one input name."""
        return float(self.point[INPUT_NAMES.index(name)])


def hessian(
    model: NeuralWorkloadModel,
    point: Sequence[float],
    indicator: str,
    params: Tuple[str, str],
    step: Optional[Dict[str, float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(Hessian, gradient) of one indicator w.r.t. two parameters.

    Central differences of the model's *exact* first derivatives, which is
    far better conditioned than double finite differences of the value.
    ``step`` gives the probe offset per parameter (default: 1 thread / 10
    injection units).
    """
    point = np.asarray(point, dtype=float)
    if point.shape != (len(INPUT_NAMES),):
        raise ValueError(
            f"point must have {len(INPUT_NAMES)} entries, got {point.shape}"
        )
    if indicator not in OUTPUT_NAMES:
        raise ValueError(f"unknown indicator {indicator!r}")
    indices = [INPUT_NAMES.index(p) for p in params]
    steps = []
    for p in params:
        default = 10.0 if p == "injection_rate" else 1.0
        steps.append(float((step or {}).get(p, default)))

    def gradient_at(probe: np.ndarray) -> np.ndarray:
        report = attribute(model, probe.reshape(1, -1))
        j = OUTPUT_NAMES.index(indicator)
        return report.jacobian[0, j, indices]

    grad = gradient_at(point)
    H = np.empty((2, 2))
    for k, (index, h) in enumerate(zip(indices, steps)):
        plus = point.copy()
        plus[index] += h
        minus = point.copy()
        minus[index] -= h
        H[:, k] = (gradient_at(plus) - gradient_at(minus)) / (2.0 * h)
    # Symmetrize (mixed partials agree analytically; differencing adds noise).
    H = 0.5 * (H + H.T)
    return H, grad


def local_curvature(
    model: NeuralWorkloadModel,
    point: Sequence[float],
    indicator: str,
    params: Tuple[str, str] = ("default_threads", "web_threads"),
    step: Optional[Dict[str, float]] = None,
) -> LocalCurvature:
    """Classify the model's local second-order geometry at ``point``."""
    H, grad = hessian(model, point, indicator, params, step=step)
    eigenvalues, eigenvectors = np.linalg.eigh(H)
    return LocalCurvature(
        indicator=indicator,
        point=np.asarray(point, dtype=float).copy(),
        params=tuple(params),
        hessian=H,
        gradient=grad,
        eigenvalues=eigenvalues,
        eigenvectors=eigenvectors,
    )
