"""Feature attribution for the neural workload model.

Recovers the "analytical power" the paper says neural models trade away
(Section 5.3): exact local derivatives of every performance indicator with
respect to every configuration parameter, in *physical units* — seconds of
dealer-purchase latency per additional web thread, transactions/second per
unit of injection rate — by chaining the network's input Jacobian through
the model's input/output scalers.

Because the model is non-linear, these are local statements; evaluate them
at the operating points you care about (the valley floor, the hill peak)
rather than averaging them blindly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..models.neural import NeuralWorkloadModel
from ..nn.jacobian import input_jacobian
from ..preprocessing.scalers import IdentityScaler, MinMaxScaler, StandardScaler
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES

__all__ = ["AttributionReport", "attribute"]


@dataclass
class AttributionReport:
    """Physical-unit Jacobian at one or more operating points."""

    #: ``jacobian[s, j, i] = d output_j / d input_i`` in physical units.
    jacobian: np.ndarray
    points: np.ndarray
    input_names: List[str]
    output_names: List[str]

    @property
    def n_points(self) -> int:
        """Number of operating points evaluated."""
        return self.jacobian.shape[0]

    def effect(self, output: str, parameter: str, point: int = 0) -> float:
        """One partial derivative, by name."""
        j = self.output_names.index(output)
        i = self.input_names.index(parameter)
        return float(self.jacobian[point, j, i])

    def ranked_effects(self, output: str, point: int = 0) -> Dict[str, float]:
        """All parameters' effects on one output, |largest| first."""
        j = self.output_names.index(output)
        row = self.jacobian[point, j, :]
        order = np.argsort(-np.abs(row))
        return {self.input_names[i]: float(row[i]) for i in order}

    def to_text(self, point: int = 0) -> str:
        """Readable table at one operating point."""
        values = dict(zip(self.input_names, self.points[point]))
        lines = [
            "Local effects at "
            + ", ".join(f"{k}={v:g}" for k, v in values.items())
        ]
        width = max(len(n) for n in self.input_names) + 2
        header = " " * width + "".join(
            f"{n[:16]:>18s}" for n in self.output_names
        )
        lines.append(header)
        for i, name in enumerate(self.input_names):
            cells = "".join(
                f"{self.jacobian[point, j, i]:>18.4g}"
                for j in range(len(self.output_names))
            )
            lines.append(name.ljust(width) + cells)
        return "\n".join(lines)


def attribute(
    model: NeuralWorkloadModel,
    points: np.ndarray,
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
) -> AttributionReport:
    """Exact physical-unit Jacobians of a fitted neural workload model.

    Chain rule through the Section 3.1 pre-processing: with standardization
    ``x_s = (x - mu_x) / sigma_x`` and ``y = y_s * sigma_y + mu_y``,

        dy/dx = sigma_y * (dy_s/dx_s) / sigma_x.

    Requires the model's joint mode (one network); separate-mode models can
    be attributed per network the same way.
    """
    if not model.is_fitted:
        raise RuntimeError("attribute() requires a fitted model")
    if not model.joint:
        raise ValueError(
            "attribute() supports joint models; fit with joint=True"
        )
    points = np.asarray(points, dtype=float)
    if points.ndim == 1:
        points = points.reshape(1, -1)
    scaled = model.x_scaler_.transform(points)
    jacobian = input_jacobian(model.networks_[0], scaled)

    x_scale = _scale_vector(model.x_scaler_, points.shape[1])
    y_scale = _scale_vector(model.y_scaler_, jacobian.shape[1])
    # J_phys[s, j, i] = y_scale[j] * J[s, j, i] / x_scale[i]
    physical = jacobian * y_scale[None, :, None] / x_scale[None, None, :]
    return AttributionReport(
        jacobian=physical,
        points=points.copy(),
        input_names=list(input_names or INPUT_NAMES[: points.shape[1]]),
        output_names=list(output_names or OUTPUT_NAMES[: jacobian.shape[1]]),
    )


def _scale_vector(scaler, size: int) -> np.ndarray:
    """Per-feature physical units per scaled unit: d(physical)/d(scaled)."""
    if isinstance(scaler, StandardScaler):
        return np.asarray(scaler.scale_, dtype=float)
    if isinstance(scaler, MinMaxScaler):
        return np.asarray(
            scaler.data_range_ / (scaler.high - scaler.low), dtype=float
        )
    if isinstance(scaler, IdentityScaler):
        return np.ones(size)
    raise TypeError(
        f"attribution does not know the scale of {type(scaler).__name__}"
    )
