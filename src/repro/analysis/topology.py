"""Surface-shape classification: parallel slopes, valleys, and hills.

Section 5 of the paper sorts the observed 3-D diagrams into three recurring
categories and draws a tuning lesson from each:

* **parallel slopes** (Figure 4) — one swept parameter barely matters once
  the other is fixed: stop tuning it;
* **valleys** (Figure 7) — a response-time trough that must be tracked by
  adjusting *two* parameters together;
* **hills** (Figure 8) — a throughput peak that one-parameter-at-a-time
  tuning will miss.

This module classifies a :class:`~repro.analysis.surface.ResponseSurface`
into those categories programmatically, so the benches can *assert* that the
reproduced figures have the paper's shapes instead of eyeballing plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .surface import ResponseSurface

__all__ = ["SurfaceKind", "SurfaceClassification", "classify_profile", "classify_surface"]


class SurfaceKind:
    """The category labels (string constants, not an enum, for easy I/O)."""

    FLAT = "flat"
    PARALLEL_SLOPES = "parallel_slopes"
    VALLEY = "valley"
    HILL = "hill"
    SLOPE = "slope"
    SADDLE = "saddle"


@dataclass
class SurfaceClassification:
    """Outcome of :func:`classify_surface`."""

    kind: str
    #: For parallel slopes: the parameter the indicator is insensitive to.
    insensitive_param: Optional[str] = None
    #: For valleys/hills: which swept parameter indexes the trough/crest.
    along_param: Optional[str] = None
    #: Diagnostic scores backing the decision.
    scores: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = ""
        if self.insensitive_param:
            extra = f" (insensitive to {self.insensitive_param})"
        if self.along_param:
            extra = f" (along {self.along_param})"
        return f"{self.kind}{extra}"


def classify_profile(values: np.ndarray, margin: float = 0.10) -> str:
    """Classify a 1-D profile as flat / valley / hill / slope.

    ``margin`` is the relative prominence an interior extremum needs over
    *both* endpoints to count (guards against classifying noise).
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 3:
        raise ValueError(f"need at least 3 points, got {values.size}")
    spread = values.max() - values.min()
    scale = max(abs(values).max(), 1e-12)
    if spread <= margin * scale:
        return SurfaceKind.FLAT
    interior = values[1:-1]
    min_index = int(np.argmin(values))
    max_index = int(np.argmax(values))
    prominence = margin * spread
    has_interior_min = (
        0 < min_index < values.size - 1
        and values[0] >= values[min_index] + prominence
        and values[-1] >= values[min_index] + prominence
    )
    has_interior_max = (
        0 < max_index < values.size - 1
        and values[0] <= values[max_index] - prominence
        and values[-1] <= values[max_index] - prominence
    )
    if has_interior_min and not has_interior_max:
        return SurfaceKind.VALLEY
    if has_interior_max and not has_interior_min:
        return SurfaceKind.HILL
    if has_interior_min and has_interior_max:
        # Both: pick the more prominent feature.
        min_prom = min(values[0], values[-1]) - values[min_index]
        max_prom = values[max_index] - max(values[0], values[-1])
        return SurfaceKind.VALLEY if min_prom >= max_prom else SurfaceKind.HILL
    del interior
    return SurfaceKind.SLOPE


def _axis_variation(z: np.ndarray, axis: int) -> float:
    """Mean per-line spread along ``axis``, normalized by the global spread."""
    spread = z.max() - z.min()
    if spread <= 0:
        return 0.0
    line_spread = (z.max(axis=axis) - z.min(axis=axis)).mean()
    return float(line_spread / spread)


def classify_surface(
    surface: ResponseSurface,
    flat_threshold: float = 0.05,
    parallel_threshold: float = 0.25,
    feature_fraction: float = 0.5,
    margin: float = 0.10,
    log_scale: bool = False,
) -> SurfaceClassification:
    """Classify a response surface into the paper's Section 5 categories.

    ``log_scale`` classifies ``log(z)`` instead of ``z`` — appropriate for
    response times, whose saturation walls span decades and would otherwise
    drown the structure elsewhere on the surface (requires positive z).

    Decision procedure:

    1. If the whole surface varies by less than ``flat_threshold`` of its
       magnitude, it is *flat*.
    2. If the variation along one swept axis is less than
       ``parallel_threshold`` of the variation along the other, the surface
       is *parallel slopes* and the weak axis's parameter is reported as the
       one not worth tuning.
    3. Otherwise each line of the grid is classified as a 1-D profile; if at
       least ``feature_fraction`` of the lines along some orientation are
       valleys (or hills), the surface is a *valley* (*hill*).
    4. A surface with both strong valley and hill line populations is a
       *saddle*; anything left is a *slope*.
    """
    z = surface.z
    if log_scale:
        if np.any(z <= 0):
            raise ValueError("log_scale requires strictly positive z")
        z = np.log(z)
    scale = max(np.abs(z).max(), 1e-12)
    spread = z.max() - z.min()
    scores: Dict[str, float] = {"relative_spread": float(spread / scale)}
    if spread <= flat_threshold * scale:
        return SurfaceClassification(kind=SurfaceKind.FLAT, scores=scores)

    # axis=0 collapses rows: variation *along rows* i.e. as row_param moves.
    variation_row_param = _axis_variation(z, axis=0)
    variation_col_param = _axis_variation(z, axis=1)
    scores["variation_along_row_param"] = variation_row_param
    scores["variation_along_col_param"] = variation_col_param

    def _featureless(profiles) -> bool:
        """True when the weak axis carries no hill/valley structure of its
        own (a dome's short axis is weak but curved — not parallel)."""
        labels = [classify_profile(p, margin) for p in profiles]
        featured = sum(
            1
            for label in labels
            if label in (SurfaceKind.HILL, SurfaceKind.VALLEY)
        )
        return featured / len(labels) < feature_fraction

    if variation_row_param < parallel_threshold * variation_col_param and (
        _featureless(z[:, j] for j in range(z.shape[1]))
    ):
        return SurfaceClassification(
            kind=SurfaceKind.PARALLEL_SLOPES,
            insensitive_param=surface.row_param,
            scores=scores,
        )
    if variation_col_param < parallel_threshold * variation_row_param and (
        _featureless(z[i, :] for i in range(z.shape[0]))
    ):
        return SurfaceClassification(
            kind=SurfaceKind.PARALLEL_SLOPES,
            insensitive_param=surface.col_param,
            scores=scores,
        )

    # Hill: the global maximum is strictly interior and every edge stays
    # below it — the paper's "one-parameter-at-a-time tuning misses the
    # peak" situation (Figure 8).  Checked before the line census because a
    # peaked surface often has messy transition lines on its flanks.
    max_i, max_j = np.unravel_index(np.argmax(z), z.shape)
    interior_max = (
        0 < max_i < z.shape[0] - 1 and 0 < max_j < z.shape[1] - 1
    )
    if interior_max:
        peak = z[max_i, max_j]
        edge_maxima = np.array(
            [z[0, :].max(), z[-1, :].max(), z[:, 0].max(), z[:, -1].max()]
        )
        shortfalls = (peak - edge_maxima) / spread
        scores["min_edge_shortfall"] = float(shortfalls.min())
        scores["mean_edge_shortfall"] = float(shortfalls.mean())
        # A hill: the peak beats every edge (axis-aligned tuning that ends
        # on a boundary cannot reach it) and the surface falls away by a
        # meaningful amount on average (rules out a flat plateau with a
        # noise bump).
        if shortfalls.min() > 0 and shortfalls.mean() >= margin:
            return SurfaceClassification(
                kind=SurfaceKind.HILL,
                along_param=None,
                scores=scores,
            )

    # Line-wise feature census in both orientations.
    row_lines = [classify_profile(z[i, :], margin) for i in range(z.shape[0])]
    col_lines = [classify_profile(z[:, j], margin) for j in range(z.shape[1])]
    fractions = {
        ("valley", surface.col_param): _fraction(row_lines, SurfaceKind.VALLEY),
        ("hill", surface.col_param): _fraction(row_lines, SurfaceKind.HILL),
        ("valley", surface.row_param): _fraction(col_lines, SurfaceKind.VALLEY),
        ("hill", surface.row_param): _fraction(col_lines, SurfaceKind.HILL),
    }
    for (feature, param), fraction in fractions.items():
        scores[f"{feature}_fraction_along_{param}"] = fraction

    best_valley = max(
        (item for item in fractions.items() if item[0][0] == "valley"),
        key=lambda item: item[1],
    )
    best_hill = max(
        (item for item in fractions.items() if item[0][0] == "hill"),
        key=lambda item: item[1],
    )
    valley_hit = best_valley[1] >= feature_fraction
    hill_hit = best_hill[1] >= feature_fraction
    if valley_hit and hill_hit:
        return SurfaceClassification(kind=SurfaceKind.SADDLE, scores=scores)
    if valley_hit:
        return SurfaceClassification(
            kind=SurfaceKind.VALLEY,
            along_param=best_valley[0][1],
            scores=scores,
        )
    if hill_hit:
        return SurfaceClassification(
            kind=SurfaceKind.HILL,
            along_param=best_hill[0][1],
            scores=scores,
        )
    return SurfaceClassification(kind=SurfaceKind.SLOPE, scores=scores)


def _fraction(labels, wanted: str) -> float:
    return sum(1 for label in labels if label == wanted) / len(labels)
