"""One-shot workload characterization reports.

Glues the whole methodology into a single artifact: given a sample
collection (and optionally a reference operating point), produce a markdown
report containing the cross-validated model accuracy, per-parameter
sensitivities, response-surface classifications with their tuning lessons,
local feature attributions, the Pareto frontier, and the advisor's
recommended configurations — the deliverable a performance engineer would
actually hand to their team after running the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..model_selection.bootstrap import bootstrap_cv_errors
from ..model_selection.cross_validation import cross_validate
from ..models.neural import NeuralWorkloadModel
from ..workload.dataset import Dataset
from ..workload.sampler import ConfigSpace, ParameterRange, full_factorial
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES
from .attribution import attribute
from .pareto import pareto_frontier
from .sensitivity import sensitivity_analysis
from .sobol import sobol_indices
from .surface import sweep
from .topology import classify_surface
from .tuning import ConfigurationAdvisor, ScoringFunction

__all__ = ["CharacterizationReport", "characterize"]

#: Tuning lesson attached to each surface kind (the paper's Section 5).
_LESSONS = {
    "parallel_slopes": (
        "one parameter barely matters here — stop tuning it"
    ),
    "valley": (
        "track the trough by adjusting both parameters together"
    ),
    "hill": (
        "the optimum is interior; one-factor-at-a-time tuning will miss it"
    ),
    "slope": "push along the gradient until another constraint binds",
    "flat": "this plane is insensitive — tune elsewhere",
    "saddle": "mixed curvature — inspect the surface before tuning",
}


@dataclass
class CharacterizationReport:
    """The assembled report; ``text`` is the markdown body."""

    text: str
    accuracy: float
    surface_kinds: Dict[str, str]

    def save(self, path: Union[str, Path]) -> Path:
        """Write the markdown to disk."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.text)
        return path


def characterize(
    dataset: Dataset,
    model: Optional[NeuralWorkloadModel] = None,
    operating_point: Optional[Sequence[float]] = None,
    response_limits: Optional[Dict[str, float]] = None,
    cv_folds: int = 5,
    seed: int = 0,
) -> CharacterizationReport:
    """Run the full paper methodology over a sample collection.

    Parameters
    ----------
    dataset:
        The (configurations, indicators) collection; 4 canonical inputs.
    model:
        An unfitted neural model template (sensible default if omitted).
        It is cross-validated for the accuracy section and then refitted on
        the full collection for the analysis sections.
    operating_point:
        Configuration around which sensitivities/attributions are computed;
        defaults to the per-column median of the collection.
    response_limits:
        Response-time ceilings for the advisor's scoring function.
    """
    if dataset.n_inputs != len(INPUT_NAMES):
        raise ValueError(
            f"characterize() expects the {len(INPUT_NAMES)} canonical "
            f"inputs, got {dataset.n_inputs}"
        )
    if model is None:
        model = NeuralWorkloadModel(
            hidden=(16, 8), error_threshold=0.005, max_epochs=10000, seed=seed
        )

    # --- accuracy ------------------------------------------------------
    template = model

    def factory(trial):
        fresh = NeuralWorkloadModel(
            hidden=template.hidden,
            error_threshold=template.error_threshold,
            max_epochs=template.max_epochs,
            joint=template.joint,
            optimizer=template._optimizer_spec,
            learning_rate=template.learning_rate,
            seed=(template.seed or 0) + trial,
        )
        return fresh

    report = cross_validate(
        factory,
        dataset.x,
        dataset.y,
        k=cv_folds,
        seed=seed,
        output_names=dataset.output_names,
    )
    intervals = bootstrap_cv_errors(report, n_resamples=500, seed=seed)

    # --- full fit for the analysis sections ----------------------------
    fitted = factory(0)
    fitted.fit(dataset.x, dataset.y)

    point = (
        np.asarray(operating_point, dtype=float)
        if operating_point is not None
        else np.median(dataset.x, axis=0)
    )
    sweeps = {
        name: np.linspace(
            dataset.x[:, i].min(), dataset.x[:, i].max(), 9
        )
        for i, name in enumerate(INPUT_NAMES)
        if dataset.x[:, i].min() < dataset.x[:, i].max()
    }
    sensitivities = sensitivity_analysis(
        fitted, dict(zip(INPUT_NAMES, point)), sweeps
    )
    attributions = attribute(fitted, point.reshape(1, -1))

    # --- surfaces over (default, web) at the operating point -----------
    surface_kinds: Dict[str, str] = {}
    surface_sections = []
    row_values = np.linspace(
        dataset.x[:, 1].min(), dataset.x[:, 1].max(), 11
    )
    col_values = np.linspace(
        dataset.x[:, 3].min(), dataset.x[:, 3].max(), 9
    )
    for indicator in OUTPUT_NAMES:
        surface = sweep(
            fitted,
            indicator_index=OUTPUT_NAMES.index(indicator),
            indicator_name=indicator,
            row_param="default_threads",
            row_values=row_values,
            col_param="web_threads",
            col_values=col_values,
            fixed={"injection_rate": point[0], "mfg_threads": point[2]},
        )
        log_scale = indicator.endswith("_rt") and bool(np.all(surface.z > 0))
        kind = classify_surface(surface, log_scale=log_scale)
        surface_kinds[indicator] = kind.kind
        surface_sections.append(
            f"- `{indicator}`: **{kind}** — {_LESSONS.get(kind.kind, '')}"
        )

    # --- global (variance-based) sensitivity -----------------------------
    sobol_space = ConfigSpace(
        [
            ParameterRange(
                name,
                dataset.x[:, i].min(),
                max(dataset.x[:, i].max(), dataset.x[:, i].min() + 1e-9),
                integer=False,
            )
            for i, name in enumerate(INPUT_NAMES)
        ]
    )
    sobol = sobol_indices(fitted, sobol_space, n_samples=1024, seed=seed)

    # --- advisor + pareto ----------------------------------------------
    space = ConfigSpace(
        [
            ParameterRange(
                name,
                dataset.x[:, i].min(),
                dataset.x[:, i].max(),
                integer=(name != "injection_rate"),
            )
            for i, name in enumerate(INPUT_NAMES)
        ]
    )
    scoring = ScoringFunction(response_limits=dict(response_limits or {}))
    advisor = ConfigurationAdvisor(fitted, scoring=scoring)
    recommendations = advisor.recommend(space, levels=6, top_k=3)
    frontier = pareto_frontier(fitted, full_factorial(space, 5))

    # --- assemble -------------------------------------------------------
    lines = [
        "# Workload characterization report",
        "",
        f"Samples: {len(dataset)} configurations; model: "
        f"{fitted.hidden} hidden units, loose-fit threshold "
        f"{fitted.error_threshold}.",
        "",
        "## Model accuracy (k-fold cross validation)",
        "",
        "```",
        report.to_table(),
        "",
        intervals.to_text(),
        "```",
        "",
        "## Surface shapes at the operating point "
        f"(injection={point[0]:g}, mfg={point[2]:g})",
        "",
        *surface_sections,
        "",
        "## Parameter sensitivities",
        "",
        "```",
        sensitivities.to_text(),
        "```",
        "",
        "## Global sensitivity (Sobol indices over the sampled region)",
        "",
        "```",
        sobol.to_text(),
        "```",
        "",
        "## Local effects (exact model derivatives, physical units)",
        "",
        "```",
        attributions.to_text(),
        "```",
        "",
        "## Recommended configurations",
        "",
        "```",
        advisor.to_text(recommendations),
        "```",
        "",
        f"## Pareto frontier ({len(frontier)} non-dominated configurations)",
        "",
        "```",
        frontier.to_text(),
        "```",
        "",
    ]
    return CharacterizationReport(
        text="\n".join(lines),
        accuracy=report.overall_accuracy,
        surface_kinds=surface_kinds,
    )
