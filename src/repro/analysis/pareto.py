"""Pareto analysis of the throughput / response-time trade-off.

A single scoring function hides the trade the engineer is actually making;
the Pareto frontier exposes it: the set of configurations not dominated on
(maximize throughput, minimize response times) simultaneously.  The paper's
valley/hill discussion is exactly a story about this frontier — the best
throughput and the best purchase latency do not coincide, and the frontier
shows what each unit of latency buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..workload.service import INPUT_NAMES, OUTPUT_NAMES, WorkloadConfig

__all__ = ["ParetoPoint", "ParetoFrontier", "pareto_frontier"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated configuration."""

    config: WorkloadConfig
    #: Objectives in canonical output order (response times, throughput).
    indicators: np.ndarray

    @property
    def throughput(self) -> float:
        """The maximize-me objective."""
        return float(self.indicators[-1])

    @property
    def worst_response_time(self) -> float:
        """The slowest of the four response-time indicators."""
        return float(self.indicators[:4].max())


@dataclass
class ParetoFrontier:
    """The non-dominated set, sorted by throughput descending."""

    points: List[ParetoPoint]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def best_throughput(self) -> ParetoPoint:
        """The throughput-maximal end of the frontier."""
        return self.points[0]

    def best_latency(self) -> ParetoPoint:
        """The latency-minimal end of the frontier."""
        return min(self.points, key=lambda p: p.worst_response_time)

    def knee(self) -> ParetoPoint:
        """The balanced point: max throughput-per-latency ratio after
        normalizing both axes to the frontier's span."""
        tps = np.array([p.throughput for p in self.points])
        lat = np.array([p.worst_response_time for p in self.points])
        tps_span = max(tps.max() - tps.min(), 1e-12)
        lat_span = max(lat.max() - lat.min(), 1e-12)
        utility = (tps - tps.min()) / tps_span - (lat - lat.min()) / lat_span
        return self.points[int(np.argmax(utility))]

    def to_text(self) -> str:
        """Readable frontier table."""
        lines = [
            "Pareto frontier (throughput maximized, response times minimized):",
            "  "
            + "  ".join(f"{n:>15s}" for n in INPUT_NAMES)
            + f"  {'tps':>8s}  {'worst rt':>9s}",
        ]
        for point in self.points:
            cells = "  ".join(f"{v:15g}" for v in point.config.as_vector())
            lines.append(
                f"  {cells}  {point.throughput:8.1f}  "
                f"{1000 * point.worst_response_time:8.1f}ms"
            )
        return "\n".join(lines)


def pareto_frontier(
    model,
    configs: Sequence[WorkloadConfig],
    output_names: Optional[Sequence[str]] = None,
) -> ParetoFrontier:
    """Non-dominated configurations under the model's predictions.

    Domination: configuration A dominates B when A's throughput is >= B's,
    every response time is <= B's, and at least one comparison is strict.
    O(n^2) pairwise filtering — fine for the grid sizes the advisor scans.
    """
    if not configs:
        raise ValueError("no configurations to analyze")
    names = list(output_names or OUTPUT_NAMES)
    matrix = np.vstack([c.as_vector() for c in configs])
    predictions = np.asarray(model.predict(matrix), dtype=float)
    if predictions.shape != (len(configs), len(names)):
        raise ValueError(
            f"model predicted {predictions.shape}, expected "
            f"({len(configs)}, {len(names)})"
        )
    # Convert to a pure minimization problem: (response times, -throughput).
    costs = predictions.copy()
    costs[:, -1] = -costs[:, -1]

    non_dominated = []
    for i in range(costs.shape[0]):
        dominated = False
        for j in range(costs.shape[0]):
            if i == j:
                continue
            if np.all(costs[j] <= costs[i]) and np.any(costs[j] < costs[i]):
                dominated = True
                break
        if not dominated:
            non_dominated.append(i)

    points = [
        ParetoPoint(config=configs[i], indicators=predictions[i].copy())
        for i in non_dominated
    ]
    points.sort(key=lambda p: -p.throughput)
    return ParetoFrontier(points=points)
