"""Principal Components Analysis for workload characterization.

Section 6 situates the paper among "researches applying advanced statistical
methods to characterize computer workloads", citing PCA-based Java workload
characterization [10, 11] and benchmark subsetting [12-14, 19].  This module
provides that companion machinery from scratch:

* :class:`PCA` — eigendecomposition of the correlation/covariance matrix,
* :func:`subset_benchmarks` — the greedy PCA-space subsetting used to pick a
  representative subset of workload configurations (the Eeckhout/
  Vandierendonck methodology applied to our configuration samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["PCA", "subset_benchmarks"]


class PCA:
    """Principal components via eigendecomposition of the covariance.

    Parameters
    ----------
    n_components:
        Components to keep (all by default).
    correlation:
        Standardize features first (i.e. use the correlation matrix) —
        standard practice in the cited workload-characterization papers
        because raw metrics have incomparable units.
    """

    def __init__(
        self, n_components: Optional[int] = None, correlation: bool = True
    ):
        if n_components is not None and n_components < 1:
            raise ValueError(
                f"n_components must be >= 1, got {n_components}"
            )
        self.n_components = n_components
        self.correlation = bool(correlation)
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None  # (k, n_features)
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.components_ is not None

    def fit(self, x: np.ndarray) -> "PCA":
        """Compute the principal axes of ``x`` (rows = observations)."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        n, d = x.shape
        if n < 2:
            raise ValueError(f"need at least 2 observations, got {n}")
        self.mean_ = x.mean(axis=0)
        if self.correlation:
            std = x.std(axis=0)
            self.scale_ = np.where(std > 0, std, 1.0)
        else:
            self.scale_ = np.ones(d)
        centered = (x - self.mean_) / self.scale_
        covariance = centered.T @ centered / (n - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.maximum(eigenvalues[order], 0.0)
        eigenvectors = eigenvectors[:, order]
        k = self.n_components if self.n_components is not None else d
        k = min(k, d)
        self.components_ = eigenvectors[:, :k].T
        self.explained_variance_ = eigenvalues[:k]
        total = eigenvalues.sum()
        self.explained_variance_ratio_ = (
            eigenvalues[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project observations onto the principal axes."""
        if not self.is_fitted:
            raise RuntimeError("transform() called before fit()")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.mean_.size:
            raise ValueError(
                f"fitted on {self.mean_.size} features, got {x.shape[1]}"
            )
        centered = (x - self.mean_) / self.scale_
        return centered @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """``fit(x).transform(x)``."""
        return self.fit(x).transform(x)

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Map component scores back to (approximate) feature space."""
        if not self.is_fitted:
            raise RuntimeError("inverse_transform() called before fit()")
        scores = np.asarray(scores, dtype=float)
        if scores.ndim == 1:
            scores = scores.reshape(1, -1)
        return scores @ self.components_ * self.scale_ + self.mean_

    def n_components_for_variance(self, fraction: float) -> int:
        """Smallest component count explaining >= ``fraction`` of variance."""
        if not self.is_fitted:
            raise RuntimeError("called before fit()")
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        cumulative = np.cumsum(self.explained_variance_ratio_)
        indices = np.nonzero(cumulative >= fraction - 1e-12)[0]
        if indices.size == 0:
            return int(self.explained_variance_ratio_.size)
        return int(indices[0]) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PCA(n_components={self.n_components}, "
            f"correlation={self.correlation}, fitted={self.is_fitted})"
        )


@dataclass
class _SubsetState:
    chosen: List[int]
    coverage: float


def subset_benchmarks(
    features: np.ndarray,
    k: int,
    variance_fraction: float = 0.9,
) -> List[int]:
    """Pick ``k`` maximally-spread representatives in PCA space.

    The benchmark-subsetting recipe of the cited related work: project all
    workloads into the leading principal components (enough to cover
    ``variance_fraction`` of the variance), then greedily choose the ``k``
    points that maximize the minimum pairwise distance — a diverse subset
    that spans the behavior space.  Returns row indices into ``features``.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    n = features.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    pca = PCA().fit(features)
    dims = pca.n_components_for_variance(variance_fraction)
    scores = pca.transform(features)[:, :dims]
    # Start from the point farthest from the centroid, then farthest-point
    # (max-min distance) greedy selection.
    centroid = scores.mean(axis=0)
    first = int(np.argmax(np.linalg.norm(scores - centroid, axis=1)))
    chosen = [first]
    while len(chosen) < k:
        distances = np.min(
            np.stack(
                [np.linalg.norm(scores - scores[c], axis=1) for c in chosen]
            ),
            axis=0,
        )
        distances[chosen] = -np.inf
        chosen.append(int(np.argmax(distances)))
    return chosen
