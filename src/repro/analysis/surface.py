"""Response surfaces: the paper's 3-D diagrams as numeric grids.

Section 5 analyzes the workload by drawing "3D diagrams of performance
indicators predicted by our model": two configuration parameters are swept
while the others stay fixed, and a predicted indicator is evaluated over the
grid.  A :class:`ResponseSurface` is that object — the grid, its axes, and
the fixed parameters — with helpers to locate extrema and slice rows/columns.
The figure captions' 4-tuples like ``(560, x, 16, y)`` map directly onto
:func:`sweep`'s arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..workload.service import INPUT_NAMES

__all__ = ["ResponseSurface", "sweep"]


@dataclass
class ResponseSurface:
    """A predicted indicator over a 2-D sweep of the configuration space."""

    #: Name of the swept parameter along rows (first axis).
    row_param: str
    #: Name of the swept parameter along columns (second axis).
    col_param: str
    row_values: np.ndarray
    col_values: np.ndarray
    #: ``z[i, j]`` = indicator at (row_values[i], col_values[j]).
    z: np.ndarray
    #: Indicator name (one of the five outputs).
    indicator: str
    #: The parameters held fixed, by name.
    fixed: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        self.row_values = np.asarray(self.row_values, dtype=float)
        self.col_values = np.asarray(self.col_values, dtype=float)
        self.z = np.asarray(self.z, dtype=float)
        if self.z.shape != (self.row_values.size, self.col_values.size):
            raise ValueError(
                f"z shape {self.z.shape} does not match axes "
                f"({self.row_values.size}, {self.col_values.size})"
            )

    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) of the grid."""
        return self.z.shape

    def caption_tuple(self) -> str:
        """The paper's 4-tuple caption, e.g. ``(560, x, 16, y)``.

        Swept parameters appear as ``x``/``y`` in canonical input order.
        """
        parts = []
        sweep_symbols = {self.row_param: "x", self.col_param: "y"}
        # Assign x to whichever swept parameter comes first canonically.
        ordered_swept = [n for n in INPUT_NAMES if n in sweep_symbols]
        symbols = dict(zip(ordered_swept, ("x", "y")))
        for name in INPUT_NAMES:
            if name in symbols:
                parts.append(symbols[name])
            elif name in self.fixed:
                value = self.fixed[name]
                parts.append(f"{value:g}")
            else:
                parts.append("?")
        return "(" + ", ".join(parts) + ")"

    def minimum(self) -> Tuple[float, float, float]:
        """(row_value, col_value, z) at the grid minimum."""
        i, j = np.unravel_index(np.argmin(self.z), self.z.shape)
        return (
            float(self.row_values[i]),
            float(self.col_values[j]),
            float(self.z[i, j]),
        )

    def maximum(self) -> Tuple[float, float, float]:
        """(row_value, col_value, z) at the grid maximum."""
        i, j = np.unravel_index(np.argmax(self.z), self.z.shape)
        return (
            float(self.row_values[i]),
            float(self.col_values[j]),
            float(self.z[i, j]),
        )

    def row_slice(self, row_value: float) -> np.ndarray:
        """The 1-D profile along columns at the nearest row value."""
        index = int(np.argmin(np.abs(self.row_values - row_value)))
        return self.z[index, :].copy()

    def col_slice(self, col_value: float) -> np.ndarray:
        """The 1-D profile along rows at the nearest column value."""
        index = int(np.argmin(np.abs(self.col_values - col_value)))
        return self.z[:, index].copy()

    def valley_path(self) -> list:
        """Per-row argmin: the path the paper's valleys trace.

        Returns ``[(row_value, col_value_of_min, z_min), ...]`` — e.g. the
        Figure 7 valley "from (0, 18) to (20, 20)" is this path's endpoints.
        """
        path = []
        for i, row_value in enumerate(self.row_values):
            j = int(np.argmin(self.z[i, :]))
            path.append(
                (float(row_value), float(self.col_values[j]), float(self.z[i, j]))
            )
        return path

    def ridge_path(self) -> list:
        """Per-row argmax — the crest of a hill surface."""
        path = []
        for i, row_value in enumerate(self.row_values):
            j = int(np.argmax(self.z[i, :]))
            path.append(
                (float(row_value), float(self.col_values[j]), float(self.z[i, j]))
            )
        return path

    def relative_span(self) -> float:
        """``max / max(min, tiny)`` — how much the indicator varies."""
        low = max(float(self.z.min()), 1e-12)
        return float(self.z.max()) / low


def sweep(
    model,
    indicator_index: int,
    indicator_name: str,
    row_param: str,
    row_values: Sequence[float],
    col_param: str,
    col_values: Sequence[float],
    fixed: Dict[str, float],
    input_names: Optional[Sequence[str]] = None,
) -> ResponseSurface:
    """Evaluate ``model`` over a 2-D grid and wrap it as a surface.

    Parameters
    ----------
    model:
        Fitted estimator with ``predict(x)`` over the canonical input order.
    indicator_index, indicator_name:
        Which output column to extract and what to call it.
    row_param, col_param:
        Names of the two swept inputs.
    fixed:
        Values for every non-swept input.
    input_names:
        Input order the model expects (canonical ``INPUT_NAMES`` default).
    """
    names = list(input_names or INPUT_NAMES)
    for name in (row_param, col_param):
        if name not in names:
            raise ValueError(f"unknown swept parameter {name!r}")
    missing = set(names) - {row_param, col_param} - set(fixed)
    if missing:
        raise ValueError(f"fixed values missing for {sorted(missing)}")
    row_values = np.asarray(row_values, dtype=float)
    col_values = np.asarray(col_values, dtype=float)
    grid_rows = []
    for row_value in row_values:
        batch = []
        for col_value in col_values:
            point = []
            for name in names:
                if name == row_param:
                    point.append(row_value)
                elif name == col_param:
                    point.append(col_value)
                else:
                    point.append(fixed[name])
            batch.append(point)
        grid_rows.append(batch)
    flat = np.asarray(grid_rows, dtype=float).reshape(-1, len(names))
    predictions = np.asarray(model.predict(flat), dtype=float)
    z = predictions[:, indicator_index].reshape(
        row_values.size, col_values.size
    )
    return ResponseSurface(
        row_param=row_param,
        col_param=col_param,
        row_values=row_values,
        col_values=col_values,
        z=z,
        indicator=indicator_name,
        fixed=dict(fixed),
    )
