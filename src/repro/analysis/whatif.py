"""What-if analysis: predicted consequences of a configuration change.

The question a performance engineer actually asks: *"what happens if I add
four web threads?"*  Answered from a fitted ensemble so every predicted
delta carries an uncertainty — a change smaller than the ensemble
disagreement is reported as inconclusive rather than as a confident
improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..models.ensemble import NeuralEnsemble
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES, WorkloadConfig

__all__ = ["IndicatorChange", "WhatIfResult", "WhatIfAnalyzer"]


@dataclass(frozen=True)
class IndicatorChange:
    """One indicator's predicted change for a proposed move."""

    indicator: str
    before: float
    after: float
    delta: float
    #: Combined ensemble spread of the two predictions.
    noise: float

    @property
    def conclusive(self) -> bool:
        """Whether the delta exceeds the ensemble disagreement."""
        return abs(self.delta) > 2.0 * self.noise

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "" if self.conclusive else "  (inconclusive)"
        return (
            f"{self.indicator}: {self.before:.4g} -> {self.after:.4g} "
            f"({self.delta:+.4g} ± {2 * self.noise:.2g}){verdict}"
        )


@dataclass
class WhatIfResult:
    """All indicators' predicted changes for one proposed move."""

    baseline: WorkloadConfig
    proposed: WorkloadConfig
    changes: List[IndicatorChange]

    def __getitem__(self, indicator: str) -> IndicatorChange:
        for change in self.changes:
            if change.indicator == indicator:
                return change
        raise KeyError(indicator)

    def conclusive_changes(self) -> List[IndicatorChange]:
        """Only the changes that beat the model's uncertainty."""
        return [c for c in self.changes if c.conclusive]

    def to_text(self) -> str:
        """Readable change list."""
        before = self.baseline.as_vector()
        after = self.proposed.as_vector()
        moved = [
            f"{name} {b:g} -> {a:g}"
            for name, b, a in zip(INPUT_NAMES, before, after)
            if b != a
        ]
        lines = [f"What if: {', '.join(moved) or 'no change'}"]
        lines.extend(f"  {change}" for change in self.changes)
        return "\n".join(lines)


class WhatIfAnalyzer:
    """Answers configuration-delta questions from a fitted ensemble.

    Parameters
    ----------
    ensemble:
        A fitted :class:`~repro.models.ensemble.NeuralEnsemble` over the
        canonical 4-input / 5-output contract.
    """

    def __init__(self, ensemble: NeuralEnsemble):
        if not ensemble.is_fitted:
            raise ValueError("WhatIfAnalyzer needs a fitted ensemble")
        self.ensemble = ensemble

    def compare(
        self, baseline: WorkloadConfig, deltas: Dict[str, float]
    ) -> WhatIfResult:
        """Predict the effect of adding ``deltas`` to ``baseline``.

        ``deltas`` maps input names to additive changes, e.g.
        ``{"web_threads": +4}``.
        """
        unknown = set(deltas) - set(INPUT_NAMES)
        if unknown:
            raise ValueError(f"unknown parameters: {sorted(unknown)}")
        vector = baseline.as_vector()
        moved = vector.copy()
        for name, delta in deltas.items():
            moved[INPUT_NAMES.index(name)] += delta
        proposed = WorkloadConfig.from_vector(moved)

        points = np.vstack([vector, proposed.as_vector()])
        prediction = self.ensemble.predict_with_uncertainty(points)
        changes = []
        for j, indicator in enumerate(OUTPUT_NAMES):
            before = float(prediction.mean[0, j])
            after = float(prediction.mean[1, j])
            noise = float(
                np.hypot(prediction.std[0, j], prediction.std[1, j])
            )
            changes.append(
                IndicatorChange(
                    indicator=indicator,
                    before=before,
                    after=after,
                    delta=after - before,
                    noise=noise,
                )
            )
        return WhatIfResult(
            baseline=baseline, proposed=proposed, changes=changes
        )
