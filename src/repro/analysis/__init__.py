"""Analysis toolkit: response surfaces, shape taxonomy, tuning, PCA."""

from .attribution import AttributionReport, attribute
from .curvature import LocalCurvature, hessian, local_curvature
from .regression import (
    IndicatorDelta,
    RegressionReport,
    detect_regressions,
)
from .pareto import ParetoFrontier, ParetoPoint, pareto_frontier
from .measured import SurfaceAgreement, measure_surface, surface_agreement
from .pca import PCA, subset_benchmarks
from .report import CharacterizationReport, characterize
from .plots import render_series, render_surface, series_to_csv, surface_to_csv
from .sobol import SobolIndices, sobol_indices
from .sensitivity import (
    ParameterSensitivity,
    SensitivityReport,
    sensitivity_analysis,
)
from .surface import ResponseSurface, sweep
from .whatif import IndicatorChange, WhatIfAnalyzer, WhatIfResult
from .topology import (
    SurfaceClassification,
    SurfaceKind,
    classify_profile,
    classify_surface,
)
from .tuning import ConfigurationAdvisor, Recommendation, ScoringFunction

__all__ = [
    "ResponseSurface",
    "sweep",
    "SurfaceKind",
    "SurfaceClassification",
    "classify_profile",
    "classify_surface",
    "ParameterSensitivity",
    "SensitivityReport",
    "sensitivity_analysis",
    "ScoringFunction",
    "Recommendation",
    "ConfigurationAdvisor",
    "PCA",
    "subset_benchmarks",
    "attribute",
    "AttributionReport",
    "local_curvature",
    "hessian",
    "LocalCurvature",
    "detect_regressions",
    "RegressionReport",
    "IndicatorDelta",
    "measure_surface",
    "surface_agreement",
    "SurfaceAgreement",
    "WhatIfAnalyzer",
    "WhatIfResult",
    "IndicatorChange",
    "sobol_indices",
    "SobolIndices",
    "pareto_frontier",
    "ParetoFrontier",
    "ParetoPoint",
    "characterize",
    "CharacterizationReport",
    "render_surface",
    "render_series",
    "surface_to_csv",
    "series_to_csv",
]
