"""Variance-based global sensitivity (Sobol indices) through the model.

Local attribution (:mod:`repro.analysis.attribution`) answers "what does one
more thread do *here*"; Sobol indices answer the global version — what
fraction of an indicator's variance over the whole region is attributable
to each configuration parameter alone (first order, ``S_i``) and including
its interactions (total order, ``S_Ti``).  A parameter with a large
``S_Ti - S_i`` gap acts mainly through interactions — precisely the
valley/hill situations the paper says one-factor-at-a-time tuning misses.

Implementation: the Saltelli/Jansen pick-freeze estimator over the fitted
model (cheap to evaluate, so tens of thousands of model calls are fine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..workload.sampler import ConfigSpace
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES

__all__ = ["SobolIndices", "sobol_indices"]


@dataclass
class SobolIndices:
    """First- and total-order indices per (parameter, indicator)."""

    #: ``first[i, j]``: first-order index of parameter i on output j.
    first: np.ndarray
    #: ``total[i, j]``: total-order index of parameter i on output j.
    total: np.ndarray
    input_names: List[str]
    output_names: List[str]
    n_base_samples: int

    def first_order(self, output: str) -> dict:
        """Per-parameter first-order indices for one output, largest first."""
        j = self.output_names.index(output)
        order = np.argsort(-self.first[:, j])
        return {self.input_names[i]: float(self.first[i, j]) for i in order}

    def total_order(self, output: str) -> dict:
        """Per-parameter total-order indices for one output, largest first."""
        j = self.output_names.index(output)
        order = np.argsort(-self.total[:, j])
        return {self.input_names[i]: float(self.total[i, j]) for i in order}

    def interaction_strength(self, output: str) -> dict:
        """``S_Ti - S_i`` per parameter: variance acting via interactions."""
        j = self.output_names.index(output)
        gaps = self.total[:, j] - self.first[:, j]
        order = np.argsort(-gaps)
        return {self.input_names[i]: float(gaps[i]) for i in order}

    def to_text(self) -> str:
        """Readable matrix: ``S_i / S_Ti`` per cell."""
        width = max(len(n) for n in self.input_names) + 2
        col = 20
        lines = [
            " " * width
            + "".join(n[: col - 2].rjust(col) for n in self.output_names)
        ]
        for i, name in enumerate(self.input_names):
            cells = "".join(
                f"{self.first[i, j]:.2f}/{self.total[i, j]:.2f}".rjust(col)
                for j in range(len(self.output_names))
            )
            lines.append(name.ljust(width) + cells)
        lines.append("(cells are first-order / total-order indices)")
        return "\n".join(lines)


def sobol_indices(
    model,
    space: ConfigSpace,
    n_samples: int = 1024,
    seed: Optional[int] = 0,
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
) -> SobolIndices:
    """Estimate Sobol indices of a fitted model over ``space``.

    Uses two independent uniform sample matrices A and B plus the d
    pick-freeze matrices ``AB_i`` (A with column i from B): Saltelli's
    first-order estimator and Jansen's total-order estimator.  Cost:
    ``n_samples * (d + 2)`` model evaluations.

    Estimates are clipped into [0, 1] (small negative values are estimator
    noise on weak parameters).
    """
    if n_samples < 16:
        raise ValueError(f"n_samples must be >= 16, got {n_samples}")
    rng = np.random.default_rng(seed)
    d = space.n_dims

    def draw(n):
        columns = [r.sample(rng, n) for r in space.ranges]
        return np.column_stack(columns)

    a = draw(n_samples)
    b = draw(n_samples)
    ya = np.asarray(model.predict(a), dtype=float)
    yb = np.asarray(model.predict(b), dtype=float)
    if ya.ndim != 2:
        raise ValueError("model.predict must return a 2-D array")
    m = ya.shape[1]

    all_y = np.vstack([ya, yb])
    variance = all_y.var(axis=0)
    variance = np.where(variance > 0, variance, 1.0)

    first = np.empty((d, m))
    total = np.empty((d, m))
    for i in range(d):
        ab_i = a.copy()
        ab_i[:, i] = b[:, i]
        y_ab = np.asarray(model.predict(ab_i), dtype=float)
        # Saltelli 2010 first-order estimator.
        first[i] = np.mean(yb * (y_ab - ya), axis=0) / variance
        # Jansen total-order estimator.
        total[i] = 0.5 * np.mean((ya - y_ab) ** 2, axis=0) / variance
    first = np.clip(first, 0.0, 1.0)
    total = np.clip(total, 0.0, 1.0)

    return SobolIndices(
        first=first,
        total=total,
        input_names=list(input_names or INPUT_NAMES[:d]),
        output_names=list(output_names or OUTPUT_NAMES[:m]),
        n_base_samples=n_samples,
    )
