"""Sobol machinery: low-discrepancy sequences and global sensitivity.

Two related tools share this module:

* :func:`sobol_sequence` / :func:`sobol_design` — a from-scratch Sobol
  low-discrepancy generator (Gray-code construction over Joe–Kuo
  direction numbers, optional seeded digital-shift scrambling).  The
  online tuning service (:mod:`repro.tuning`) seeds its configuration
  searches from it: ``n`` Sobol points cover the 4-D space far more
  evenly than ``n`` uniform draws, so the search's first vectorized
  sweep already brackets every valley the paper's surfaces show.
* :func:`sobol_indices` — variance-based global sensitivity.  Local
  attribution (:mod:`repro.analysis.attribution`) answers "what does one
  more thread do *here*"; Sobol indices answer the global version — what
  fraction of an indicator's variance over the whole region is
  attributable to each configuration parameter alone (first order,
  ``S_i``) and including its interactions (total order, ``S_Ti``).  A
  parameter with a large ``S_Ti - S_i`` gap acts mainly through
  interactions — precisely the valley/hill situations the paper says
  one-factor-at-a-time tuning misses.  Implementation: the
  Saltelli/Jansen pick-freeze estimator over the fitted model (cheap to
  evaluate, so tens of thousands of model calls are fine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..workload.sampler import ConfigSpace
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES, WorkloadConfig

__all__ = [
    "SobolIndices",
    "sobol_indices",
    "sobol_sequence",
    "sobol_design",
    "SOBOL_MAX_DIMS",
]

# ----------------------------------------------------------------------
# Sobol low-discrepancy sequence (Gray-code construction)
# ----------------------------------------------------------------------

#: Bits of precision per coordinate; supports sequences up to 2**30 points.
_SOBOL_BITS = 30

#: Joe–Kuo (new-joe-kuo-6) primitive polynomials and initial direction
#: numbers for dimensions 2..8; dimension 1 is the van der Corput sequence.
#: Entries are ``(degree s, polynomial coefficients a, m_1..m_s)``.
_DIRECTIONS = (
    (1, 0, (1,)),
    (2, 1, (1, 3)),
    (3, 1, (1, 3, 1)),
    (3, 2, (1, 1, 1)),
    (4, 1, (1, 1, 3, 3)),
    (4, 4, (1, 3, 5, 13)),
    (5, 2, (1, 1, 5, 5, 17)),
)

#: Dimensions supported by the embedded direction-number table.
SOBOL_MAX_DIMS = 1 + len(_DIRECTIONS)


def _direction_vectors(dim: int) -> np.ndarray:
    """The ``_SOBOL_BITS`` direction integers for one dimension (0-based)."""
    v = np.zeros(_SOBOL_BITS, dtype=np.int64)
    if dim == 0:
        for k in range(_SOBOL_BITS):
            v[k] = 1 << (_SOBOL_BITS - 1 - k)
        return v
    s, a, m_init = _DIRECTIONS[dim - 1]
    m = list(m_init)
    for k in range(s, _SOBOL_BITS):
        new = m[k - s] ^ (m[k - s] << s)
        for i in range(1, s):
            if (a >> (s - 1 - i)) & 1:
                new ^= m[k - i] << i
        m.append(new)
    for k in range(_SOBOL_BITS):
        v[k] = m[k] << (_SOBOL_BITS - 1 - k)
    return v


def sobol_sequence(
    n: int,
    dims: int,
    seed: Optional[int] = None,
    scramble: bool = True,
) -> np.ndarray:
    """The first ``n`` points of a ``dims``-dimensional Sobol sequence.

    Returns an ``(n, dims)`` array in ``[0, 1)``.  The Gray-code
    construction XORs one direction number per step, so generation is
    O(n·dims).  With ``scramble`` (the default), every dimension's bit
    stream is XORed with a seeded random digital shift — decorrelating
    repeated searches while preserving the net's equidistribution; the
    scrambled sequence is a pure function of ``(n, dims, seed)``.
    ``n == 0`` returns an empty ``(0, dims)`` array.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 1 <= dims <= SOBOL_MAX_DIMS:
        raise ValueError(
            f"dims must be in [1, {SOBOL_MAX_DIMS}] "
            f"(embedded direction numbers), got {dims}"
        )
    points = np.zeros((n, dims), dtype=np.int64)
    if n > 0:
        for j in range(dims):
            v = _direction_vectors(j)
            x = np.int64(0)
            for i in range(1, n):
                # Gray-code index: the bit that flips between i-1 and i.
                c = (i & -i).bit_length() - 1
                x ^= v[c]
                points[i, j] = x
    if scramble:
        rng = np.random.default_rng(seed)
        shift = rng.integers(
            0, 1 << _SOBOL_BITS, size=dims, dtype=np.int64
        )
        points ^= shift[np.newaxis, :]
    return points.astype(float) / float(1 << _SOBOL_BITS)


def sobol_design(
    space: ConfigSpace,
    n: int,
    seed: Optional[int] = None,
    scramble: bool = True,
) -> List[WorkloadConfig]:
    """``n`` Sobol-distributed configurations across ``space``.

    Unit-cube points from :func:`sobol_sequence` are mapped affinely onto
    each :class:`~repro.workload.sampler.ParameterRange` (a degenerate
    ``low == high`` range yields that constant) and clamped back into the
    declared bounds after integer rounding, so every returned
    configuration is inside the space.
    """
    unit = sobol_sequence(n, space.n_dims, seed=seed, scramble=scramble)
    configs = []
    for row in unit:
        vector = np.array(
            [
                r.low + u * (r.high - r.low)
                for u, r in zip(row, space.ranges)
            ]
        )
        configs.append(WorkloadConfig.from_vector(space.clip(vector)))
    return configs


@dataclass
class SobolIndices:
    """First- and total-order indices per (parameter, indicator)."""

    #: ``first[i, j]``: first-order index of parameter i on output j.
    first: np.ndarray
    #: ``total[i, j]``: total-order index of parameter i on output j.
    total: np.ndarray
    input_names: List[str]
    output_names: List[str]
    n_base_samples: int

    def first_order(self, output: str) -> dict:
        """Per-parameter first-order indices for one output, largest first."""
        j = self.output_names.index(output)
        order = np.argsort(-self.first[:, j])
        return {self.input_names[i]: float(self.first[i, j]) for i in order}

    def total_order(self, output: str) -> dict:
        """Per-parameter total-order indices for one output, largest first."""
        j = self.output_names.index(output)
        order = np.argsort(-self.total[:, j])
        return {self.input_names[i]: float(self.total[i, j]) for i in order}

    def interaction_strength(self, output: str) -> dict:
        """``S_Ti - S_i`` per parameter: variance acting via interactions."""
        j = self.output_names.index(output)
        gaps = self.total[:, j] - self.first[:, j]
        order = np.argsort(-gaps)
        return {self.input_names[i]: float(gaps[i]) for i in order}

    def to_text(self) -> str:
        """Readable matrix: ``S_i / S_Ti`` per cell."""
        width = max(len(n) for n in self.input_names) + 2
        col = 20
        lines = [
            " " * width
            + "".join(n[: col - 2].rjust(col) for n in self.output_names)
        ]
        for i, name in enumerate(self.input_names):
            cells = "".join(
                f"{self.first[i, j]:.2f}/{self.total[i, j]:.2f}".rjust(col)
                for j in range(len(self.output_names))
            )
            lines.append(name.ljust(width) + cells)
        lines.append("(cells are first-order / total-order indices)")
        return "\n".join(lines)


def sobol_indices(
    model,
    space: ConfigSpace,
    n_samples: int = 1024,
    seed: Optional[int] = 0,
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
) -> SobolIndices:
    """Estimate Sobol indices of a fitted model over ``space``.

    Uses two independent uniform sample matrices A and B plus the d
    pick-freeze matrices ``AB_i`` (A with column i from B): Saltelli's
    first-order estimator and Jansen's total-order estimator.  Cost:
    ``n_samples * (d + 2)`` model evaluations.

    Estimates are clipped into [0, 1] (small negative values are estimator
    noise on weak parameters).
    """
    if n_samples < 16:
        raise ValueError(f"n_samples must be >= 16, got {n_samples}")
    rng = np.random.default_rng(seed)
    d = space.n_dims

    def draw(n):
        columns = [r.sample(rng, n) for r in space.ranges]
        return np.column_stack(columns)

    a = draw(n_samples)
    b = draw(n_samples)
    ya = np.asarray(model.predict(a), dtype=float)
    yb = np.asarray(model.predict(b), dtype=float)
    if ya.ndim != 2:
        raise ValueError("model.predict must return a 2-D array")
    m = ya.shape[1]

    all_y = np.vstack([ya, yb])
    variance = all_y.var(axis=0)
    variance = np.where(variance > 0, variance, 1.0)

    first = np.empty((d, m))
    total = np.empty((d, m))
    for i in range(d):
        ab_i = a.copy()
        ab_i[:, i] = b[:, i]
        y_ab = np.asarray(model.predict(ab_i), dtype=float)
        # Saltelli 2010 first-order estimator.
        first[i] = np.mean(yb * (y_ab - ya), axis=0) / variance
        # Jansen total-order estimator.
        total[i] = 0.5 * np.mean((ya - y_ab) ** 2, axis=0) / variance
    first = np.clip(first, 0.0, 1.0)
    total = np.clip(total, 0.0, 1.0)

    return SobolIndices(
        first=first,
        total=total,
        input_names=list(input_names or INPUT_NAMES[:d]),
        output_names=list(output_names or OUTPUT_NAMES[:m]),
        n_base_samples=n_samples,
    )
