"""Model-guided performance tuning.

The paper's closing motivation: "our model can effectively narrow down the
configuration combinations which we should concentrate [on], thus radically
reducing ineffectual experiments ... we can further build a system that
recommends the best configuration according to a scoring function"
(Section 5.3).  This module *is* that system:

* a :class:`ScoringFunction` that rewards throughput and penalizes
  response-time-constraint violations,
* a :class:`ConfigurationAdvisor` that scans the model's predictions over a
  candidate grid and returns ranked recommendations, and
* :meth:`ConfigurationAdvisor.plan_experiments` — the test-case-minimization
  workflow: out of thousands of model-evaluated candidates, pick the few
  diverse, high-scoring configurations worth running on the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..workload.sampler import ConfigSpace, full_factorial
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES, WorkloadConfig

__all__ = ["ScoringFunction", "Recommendation", "ConfigurationAdvisor"]


@dataclass
class ScoringFunction:
    """Score = throughput minus penalties for violated response limits.

    Parameters
    ----------
    response_limits:
        Max acceptable value per response-time indicator (seconds).  Missing
        indicators are unconstrained.
    throughput_indicator:
        Output column to maximize.
    penalty_weight:
        Score units subtracted per second of constraint violation, scaled by
        the throughput magnitude so penalties dominate when limits break.
    """

    response_limits: Dict[str, float] = field(default_factory=dict)
    throughput_indicator: str = "effective_tps"
    penalty_weight: float = 10.0

    def __post_init__(self):
        for name, limit in self.response_limits.items():
            if limit <= 0:
                raise ValueError(f"limit for {name} must be positive, got {limit}")
        if self.penalty_weight < 0:
            raise ValueError(
                f"penalty_weight must be non-negative, got {self.penalty_weight}"
            )

    def score(
        self, indicators: Dict[str, float]
    ) -> float:
        """Score one predicted indicator vector (higher is better)."""
        if self.throughput_indicator not in indicators:
            raise KeyError(
                f"indicators lack {self.throughput_indicator!r}: "
                f"{sorted(indicators)}"
            )
        throughput = indicators[self.throughput_indicator]
        penalty = 0.0
        for name, limit in self.response_limits.items():
            if name not in indicators:
                raise KeyError(f"indicators lack constrained {name!r}")
            violation = max(0.0, indicators[name] - limit)
            penalty += violation
        return throughput - self.penalty_weight * abs(throughput) * penalty

    def satisfied(self, indicators: Dict[str, float]) -> bool:
        """Whether every response limit is met."""
        return all(
            indicators[name] <= limit
            for name, limit in self.response_limits.items()
        )


@dataclass
class Recommendation:
    """One ranked configuration."""

    config: WorkloadConfig
    score: float
    predicted: Dict[str, float]
    meets_limits: bool


class ConfigurationAdvisor:
    """Rank candidate configurations by model-predicted score.

    Parameters
    ----------
    model:
        Fitted estimator over the canonical 4-input order.
    scoring:
        The scoring function; a throughput-only default if omitted.
    output_names:
        Output order of the model's predictions.
    """

    def __init__(
        self,
        model,
        scoring: Optional[ScoringFunction] = None,
        output_names: Optional[Sequence[str]] = None,
    ):
        self.model = model
        self.scoring = scoring if scoring is not None else ScoringFunction()
        self.output_names = list(output_names or OUTPUT_NAMES)

    # ------------------------------------------------------------------

    def evaluate(self, configs: Sequence[WorkloadConfig]) -> List[Recommendation]:
        """Score every candidate, best first."""
        if not configs:
            raise ValueError("no candidate configurations")
        matrix = np.vstack([c.as_vector() for c in configs])
        predictions = np.asarray(self.model.predict(matrix), dtype=float)
        if predictions.shape != (len(configs), len(self.output_names)):
            raise ValueError(
                f"model predicted shape {predictions.shape}, expected "
                f"({len(configs)}, {len(self.output_names)})"
            )
        recommendations = []
        for config, row in zip(configs, predictions):
            indicators = dict(zip(self.output_names, (float(v) for v in row)))
            recommendations.append(
                Recommendation(
                    config=config,
                    score=self.scoring.score(indicators),
                    predicted=indicators,
                    meets_limits=self.scoring.satisfied(indicators),
                )
            )
        # Equal scores are broken by configuration tuple order, so the
        # ranking (and therefore recommend()'s answer) is a pure function
        # of the candidate set — never of float-sort happenstance.
        recommendations.sort(
            key=lambda r: (-r.score, tuple(r.config.as_vector()))
        )
        return recommendations

    @staticmethod
    def _clamped_candidates(
        space: ConfigSpace, configs: Sequence[WorkloadConfig]
    ) -> List[WorkloadConfig]:
        """Candidates clamped into the declared bounds, deduplicated.

        Grid generation rounds integer parameters, which can carry a
        value just past a fractional bound (``low=2.6`` grids a 2);
        clamping before evaluation keeps every scored candidate — and so
        every recommendation — inside the space the caller declared.
        """
        seen = set()
        clamped = []
        for config in configs:
            candidate = WorkloadConfig.from_vector(
                space.clip(config.as_vector())
            )
            key = tuple(candidate.as_vector())
            if key not in seen:
                seen.add(key)
                clamped.append(candidate)
        return clamped

    def recommend(
        self,
        space: ConfigSpace,
        levels: int = 8,
        top_k: int = 5,
    ) -> List[Recommendation]:
        """Scan a full-factorial candidate grid and return the top ``top_k``."""
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        candidates = self._clamped_candidates(space, full_factorial(space, levels))
        return self.evaluate(candidates)[:top_k]

    def plan_experiments(
        self,
        space: ConfigSpace,
        budget: int,
        levels: int = 8,
        diversity: float = 0.15,
    ) -> List[Recommendation]:
        """Pick ``budget`` diverse high-scoring configurations to verify.

        Greedy max-score selection with a minimum normalized distance
        ``diversity`` between chosen configurations, so the scarce real
        experiments don't all probe the same corner — the paper's
        "radically reducing ineffectual experiments".
        """
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        ranked = self.evaluate(
            self._clamped_candidates(space, full_factorial(space, levels))
        )
        spans = np.array(
            [max(r.high - r.low, 1e-12) for r in space.ranges], dtype=float
        )
        chosen: List[Recommendation] = []
        for candidate in ranked:
            if len(chosen) >= budget:
                break
            vector = candidate.config.as_vector() / spans
            far_enough = all(
                np.linalg.norm(vector - picked.config.as_vector() / spans)
                >= diversity
                for picked in chosen
            )
            if far_enough:
                chosen.append(candidate)
        return chosen

    def to_text(self, recommendations: Sequence[Recommendation]) -> str:
        """A readable ranking table."""
        lines = [
            "rank  " + "  ".join(f"{n:>15}" for n in INPUT_NAMES)
            + "   score  limits"
        ]
        for rank, rec in enumerate(recommendations, start=1):
            vector = rec.config.as_vector()
            cells = "  ".join(f"{v:15g}" for v in vector)
            ok = "ok" if rec.meets_limits else "VIOLATED"
            lines.append(f"{rank:<4d}  {cells}  {rec.score:7.1f}  {ok}")
        return "\n".join(lines)
