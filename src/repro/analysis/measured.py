"""Measured surfaces and model-vs-measured comparison.

The paper's 3-D figures overlay dots — actual measurements — on the model's
predicted surface ("those dots indicate the location of the actual data.
They spread over (or under) the surface with the same accuracy described in
Table 2").  This module produces both halves of that comparison:

* :func:`measure_surface` — run the *simulator* over the same 2-D grid a
  model surface sweeps, giving the ground-truth surface, and
* :func:`surface_agreement` — the per-cell relative differences between a
  predicted and a measured surface, summarized with the paper's
  harmonic-mean metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..model_selection.metrics import harmonic_mean
from ..workload.service import (
    INPUT_NAMES,
    OUTPUT_NAMES,
    ThreeTierWorkload,
    WorkloadConfig,
)
from .surface import ResponseSurface

__all__ = ["SurfaceAgreement", "measure_surface", "surface_agreement"]


def measure_surface(
    workload: ThreeTierWorkload,
    indicator: str,
    row_param: str,
    row_values: Sequence[float],
    col_param: str,
    col_values: Sequence[float],
    fixed: Dict[str, float],
    floor: float = 1e-3,
) -> ResponseSurface:
    """Simulate every grid cell and return the measured surface.

    Grid cost is ``len(row_values) * len(col_values)`` simulator runs; use
    coarse grids (the paper's dots are sparse too).
    """
    if indicator not in OUTPUT_NAMES:
        raise ValueError(f"unknown indicator {indicator!r}")
    for name in (row_param, col_param):
        if name not in INPUT_NAMES:
            raise ValueError(f"unknown swept parameter {name!r}")
    missing = set(INPUT_NAMES) - {row_param, col_param} - set(fixed)
    if missing:
        raise ValueError(f"fixed values missing for {sorted(missing)}")
    row_values = np.asarray(row_values, dtype=float)
    col_values = np.asarray(col_values, dtype=float)
    index = OUTPUT_NAMES.index(indicator)
    z = np.empty((row_values.size, col_values.size))
    for i, row_value in enumerate(row_values):
        for j, col_value in enumerate(col_values):
            values = dict(fixed)
            values[row_param] = row_value
            values[col_param] = col_value
            config = WorkloadConfig.from_vector(
                np.array([values[name] for name in INPUT_NAMES])
            )
            z[i, j] = max(workload.run(config).as_vector()[index], floor)
    return ResponseSurface(
        row_param=row_param,
        col_param=col_param,
        row_values=row_values,
        col_values=col_values,
        z=z,
        indicator=indicator,
        fixed=dict(fixed),
    )


@dataclass
class SurfaceAgreement:
    """Cell-by-cell comparison of a predicted and a measured surface."""

    predicted: ResponseSurface
    measured: ResponseSurface
    #: ``|predicted - measured| / |measured|`` per cell.
    relative_error: np.ndarray

    @property
    def harmonic_mean_error(self) -> float:
        """The paper's Table 2 metric over the whole grid."""
        return harmonic_mean(self.relative_error.ravel())

    @property
    def median_error(self) -> float:
        """Median per-cell relative error."""
        return float(np.median(self.relative_error))

    @property
    def worst_cell(self):
        """((row_value, col_value), error) of the worst-predicted cell."""
        i, j = np.unravel_index(
            np.argmax(self.relative_error), self.relative_error.shape
        )
        return (
            (
                float(self.predicted.row_values[i]),
                float(self.predicted.col_values[j]),
            ),
            float(self.relative_error[i, j]),
        )

    def to_text(self) -> str:
        """Summary line plus the worst cell."""
        (row, col), worst = self.worst_cell
        return (
            f"{self.predicted.indicator}: harmonic-mean error "
            f"{100 * self.harmonic_mean_error:.1f}%, median "
            f"{100 * self.median_error:.1f}%, worst "
            f"{100 * worst:.0f}% at ({self.predicted.row_param}={row:g}, "
            f"{self.predicted.col_param}={col:g})"
        )


def surface_agreement(
    predicted: ResponseSurface, measured: ResponseSurface
) -> SurfaceAgreement:
    """Compare two surfaces over an identical grid."""
    if predicted.z.shape != measured.z.shape:
        raise ValueError(
            f"grid shapes differ: {predicted.z.shape} vs {measured.z.shape}"
        )
    if not np.allclose(predicted.row_values, measured.row_values) or not (
        np.allclose(predicted.col_values, measured.col_values)
    ):
        raise ValueError("surfaces sweep different grids")
    if np.any(measured.z == 0):
        raise ValueError("measured surface contains zeros; floor it first")
    relative = np.abs(predicted.z - measured.z) / np.abs(measured.z)
    return SurfaceAgreement(
        predicted=predicted, measured=measured, relative_error=relative
    )
