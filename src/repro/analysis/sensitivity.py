"""Per-parameter sensitivity analysis.

Quantifies, from a fitted model, how much each configuration parameter moves
each indicator — the one-dimensional companion of the surface taxonomy.  A
parameter whose sweeps are flat for an indicator is exactly the paper's
"of no use ... to tune" case (Section 5.1); the configuration advisor uses
this to tell performance engineers which knobs to leave alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..workload.service import INPUT_NAMES, OUTPUT_NAMES
from .topology import classify_profile

__all__ = ["ParameterSensitivity", "SensitivityReport", "sensitivity_analysis"]


@dataclass
class ParameterSensitivity:
    """Effect of sweeping one parameter on one indicator."""

    parameter: str
    indicator: str
    sweep_values: np.ndarray
    responses: np.ndarray
    #: (max - min) / |mean| over the sweep; 0 means perfectly flat.
    relative_range: float
    #: 1-D shape label from :func:`~repro.analysis.topology.classify_profile`.
    shape: str


@dataclass
class SensitivityReport:
    """All parameter-indicator sensitivities for one fitted model."""

    entries: List[ParameterSensitivity]
    baseline: Dict[str, float]

    def for_indicator(self, indicator: str) -> List[ParameterSensitivity]:
        """Entries for one indicator, most influential parameter first."""
        rows = [e for e in self.entries if e.indicator == indicator]
        if not rows:
            raise KeyError(f"no entries for indicator {indicator!r}")
        return sorted(rows, key=lambda e: e.relative_range, reverse=True)

    def insensitive_parameters(
        self, indicator: str, threshold: float = 0.05
    ) -> List[str]:
        """Parameters whose sweeps move ``indicator`` by < ``threshold``."""
        return [
            e.parameter
            for e in self.for_indicator(indicator)
            if e.relative_range < threshold
        ]

    def to_text(self) -> str:
        """A compact sensitivity matrix (relative ranges in percent)."""
        indicators = sorted({e.indicator for e in self.entries})
        parameters = sorted({e.parameter for e in self.entries})
        width = max(len(p) for p in parameters) + 2
        col = 18
        lines = [
            " " * width + "".join(ind[:col - 1].rjust(col) for ind in indicators)
        ]
        lookup = {(e.parameter, e.indicator): e for e in self.entries}
        for param in parameters:
            cells = []
            for ind in indicators:
                entry = lookup[(param, ind)]
                cells.append(
                    f"{100 * entry.relative_range:.0f}% {entry.shape}".rjust(col)
                )
            lines.append(param.ljust(width) + "".join(cells))
        return "\n".join(lines)


def sensitivity_analysis(
    model,
    baseline: Dict[str, float],
    sweeps: Dict[str, Sequence[float]],
    input_names: Optional[Sequence[str]] = None,
    output_names: Optional[Sequence[str]] = None,
) -> SensitivityReport:
    """Sweep each parameter around a baseline and measure indicator movement.

    Parameters
    ----------
    model:
        Fitted estimator over the canonical input order.
    baseline:
        The operating point; one value per input name.
    sweeps:
        Per-parameter value lists to sweep (other parameters stay at the
        baseline).
    """
    in_names = list(input_names or INPUT_NAMES)
    out_names = list(output_names or OUTPUT_NAMES)
    missing = set(in_names) - set(baseline)
    if missing:
        raise ValueError(f"baseline missing {sorted(missing)}")
    unknown = set(sweeps) - set(in_names)
    if unknown:
        raise ValueError(f"sweeps for unknown parameters {sorted(unknown)}")

    entries: List[ParameterSensitivity] = []
    for parameter, values in sweeps.items():
        values = np.asarray(values, dtype=float)
        if values.size < 3:
            raise ValueError(
                f"sweep for {parameter!r} needs >= 3 points, got {values.size}"
            )
        rows = []
        for value in values:
            point = [
                value if name == parameter else baseline[name]
                for name in in_names
            ]
            rows.append(point)
        predictions = np.asarray(model.predict(np.asarray(rows)), dtype=float)
        for j, indicator in enumerate(out_names):
            response = predictions[:, j]
            mean = float(np.abs(response).mean())
            relative = float(
                (response.max() - response.min()) / mean if mean > 0 else 0.0
            )
            entries.append(
                ParameterSensitivity(
                    parameter=parameter,
                    indicator=indicator,
                    sweep_values=values.copy(),
                    responses=response.copy(),
                    relative_range=relative,
                    shape=classify_profile(response),
                )
            )
    return SensitivityReport(entries=entries, baseline=dict(baseline))
