"""Performance-regression detection between two measured datasets.

The operational use of workload characterization: the same configurations
measured before and after a change (new build, kernel upgrade, schema
migration) — which indicators actually regressed, beyond run-to-run noise?

The detector pairs samples by configuration, computes per-pair relative
deltas, and flags indicators whose median delta exceeds both a practical
threshold and the noise floor implied by the pair scatter (a sign-test-
style criterion that needs no distributional assumptions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..workload.dataset import Dataset

__all__ = ["IndicatorDelta", "RegressionReport", "detect_regressions"]

#: Output columns where *larger is better* (all others: smaller is better).
_HIGHER_IS_BETTER = {"effective_tps"}


@dataclass
class IndicatorDelta:
    """Before/after comparison of one indicator."""

    name: str
    #: Per-pair relative change, positive = value increased.
    deltas: np.ndarray
    median_delta: float
    #: Fraction of pairs that moved in the worse direction.
    worse_fraction: float
    #: Two-sided sign-test p-value for "no systematic direction".
    sign_p_value: float
    regressed: bool
    improved: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = (
            "REGRESSED"
            if self.regressed
            else ("improved" if self.improved else "unchanged")
        )
        return (
            f"{self.name}: median {100 * self.median_delta:+.1f}% "
            f"({verdict}, p={self.sign_p_value:.3f})"
        )


@dataclass
class RegressionReport:
    """All indicators' verdicts."""

    per_indicator: List[IndicatorDelta]
    n_pairs: int

    def __getitem__(self, name: str) -> IndicatorDelta:
        for entry in self.per_indicator:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def regressions(self) -> List[str]:
        """Names of indicators flagged as regressed."""
        return [e.name for e in self.per_indicator if e.regressed]

    def improvements(self) -> List[str]:
        """Names of indicators flagged as improved."""
        return [e.name for e in self.per_indicator if e.improved]

    def to_text(self) -> str:
        """Readable verdict table."""
        lines = [f"Regression check over {self.n_pairs} paired configurations:"]
        lines.extend(f"  {entry}" for entry in self.per_indicator)
        return "\n".join(lines)


def _sign_test_p(worse: int, n: int) -> float:
    """Two-sided binomial sign test against p = 0.5 (exact, small n)."""
    if n == 0:
        return 1.0
    extreme = max(worse, n - worse)
    tail = sum(math.comb(n, k) for k in range(extreme, n + 1)) / 2.0**n
    return min(1.0, 2.0 * tail)


def detect_regressions(
    baseline: Dataset,
    candidate: Dataset,
    threshold: float = 0.05,
    alpha: float = 0.05,
) -> RegressionReport:
    """Compare paired measurements of the same configurations.

    Parameters
    ----------
    baseline, candidate:
        Datasets whose ``x`` rows match 1:1 (same configurations, any
        order); measured on the old and new system respectively.
    threshold:
        Minimum |median relative delta| to call a change practically
        significant (5 % by default).
    alpha:
        Sign-test significance level for "the direction is systematic".
    """
    if baseline.output_names != candidate.output_names:
        raise ValueError("output schemas differ between datasets")
    if len(baseline) != len(candidate):
        raise ValueError(
            f"baseline has {len(baseline)} samples, candidate "
            f"{len(candidate)}"
        )
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")

    # Pair rows by configuration.
    index_of = {tuple(row): i for i, row in enumerate(candidate.x)}
    if len(index_of) != len(candidate):
        raise ValueError("candidate contains duplicate configurations")
    pairs = []
    for i, row in enumerate(baseline.x):
        j = index_of.get(tuple(row))
        if j is None:
            raise ValueError(
                f"configuration {row.tolist()} missing from the candidate"
            )
        pairs.append((i, j))

    entries = []
    for column, name in enumerate(baseline.output_names):
        before = np.array([baseline.y[i, column] for i, _ in pairs])
        after = np.array([candidate.y[j, column] for _, j in pairs])
        if np.any(before == 0):
            raise ValueError(
                f"indicator {name!r} has zero baseline values; relative "
                "deltas are undefined"
            )
        deltas = (after - before) / np.abs(before)
        higher_better = name in _HIGHER_IS_BETTER
        worse = deltas < 0 if higher_better else deltas > 0
        n_moved = int(np.sum(deltas != 0))
        worse_count = int(np.sum(worse & (deltas != 0)))
        p_value = _sign_test_p(worse_count, n_moved)
        median = float(np.median(deltas))
        median_is_worse = median < 0 if higher_better else median > 0
        significant = abs(median) >= threshold and p_value <= alpha
        entries.append(
            IndicatorDelta(
                name=name,
                deltas=deltas,
                median_delta=median,
                worse_fraction=(
                    worse_count / n_moved if n_moved else 0.0
                ),
                sign_p_value=p_value,
                regressed=significant and median_is_worse,
                improved=significant and not median_is_worse,
            )
        )
    return RegressionReport(per_indicator=entries, n_pairs=len(pairs))
