"""The inference worker process: ``python -m repro.cluster.worker``.

One worker = one OS process owning its own :class:`ModelRegistry` over the
shared artifact directory.  The process boundary is the bulkhead the
in-process serving stack cannot offer: a segfault, an OOM kill, or a
wedged NumPy call takes down *this* worker's in-flight requests and
nothing else — the router retries them on a sibling replica while the
supervisor restarts the corpse.

Lifecycle contract
------------------
1. **Preload before ready.**  Every artifact in the models directory is
   materialized *before* the ``ready`` frame is sent, so the supervisor
   never routes traffic to a worker that would stall it on a cold parse.
   A restarted worker therefore picks up whatever artifact versions are
   on disk at restart time — a promote that lands mid-restart is simply
   what the new process loads (and per-request mtime checks hot-reload
   anything promoted later).
2. **Single-threaded request loop.**  Frames are answered strictly in
   order on one socket; the parent serializes access, so there is no
   multiplexing to get wrong.  ``ping`` answers double as heartbeats.
3. **Fault injection runs in-process.**  A :class:`FaultPlan` shipped as
   JSON via ``--faults`` fires at the ``worker.handle`` site before each
   request: ``kill_worker`` SIGKILLs this process mid-flight,
   ``hang_worker`` wedges it (alive for ``waitpid``, dead for
   heartbeats), ``slow_worker`` injects latency.  This is how the chaos
   tests die on schedule.
4. **Drain on request.**  The ``drain`` op acknowledges and exits 0 —
   the per-worker half of the server's SIGTERM / ``/admin/drain`` path.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import time
from typing import List, Optional, Tuple

import numpy as np

from ..reliability.faults import SITE_WORKER_HANDLE, FaultPlan
from ..serving.registry import ModelRegistry
from .protocol import (
    ProtocolError,
    pack_array,
    recv_frame,
    send_frame,
    unpack_array,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description="Inference worker child process (spawned by the "
                    "cluster supervisor; not meant to be run by hand).",
    )
    parser.add_argument("--models-dir", required=True)
    parser.add_argument("--socket-fd", type=int, required=True,
                        help="inherited fd of the supervisor socketpair end")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--faults", default=None,
                        help="JSON FaultPlan.to_dict() for worker-side "
                             "chaos (kill/hang/slow kill points)")
    return parser


def _preload(registry: ModelRegistry) -> List[str]:
    """Materialize every artifact; returns the names that loaded."""
    loaded = []
    for name in registry.list_models():
        try:
            registry.get(name)
        except Exception:  # noqa: BLE001 - serve the healthy majority
            continue
        loaded.append(name)
    return loaded


def _handle_predict(
    registry: ModelRegistry, header: dict, payload: bytes, worker_id: int
) -> Tuple[dict, bytes]:
    """One predict frame → (response header, response payload)."""
    started = time.perf_counter()
    deadline_ms = header.get("deadline_ms")
    if deadline_ms is not None and float(deadline_ms) <= 0:
        return {
            "ok": False, "kind": "DeadlineExceeded",
            "error": "deadline exhausted before the worker ran",
        }, b""
    model_name = header["model"]
    x = unpack_array(payload, int(header["n"]), int(header["d"]))
    try:
        model = registry.get(model_name)
    except KeyError:
        return {
            "ok": False, "kind": "KeyError",
            "error": f"unknown model {model_name!r}",
        }, b""
    predict_started = time.perf_counter()
    outputs = np.asarray(model.predict(x), dtype=float)
    predict_s = time.perf_counter() - predict_started
    return {
        "ok": True,
        "op": "predict",
        "n": int(outputs.shape[0]),
        "m": int(outputs.shape[1]),
        "predict_s": predict_s,
        "handle_s": time.perf_counter() - started,
        "source": "mlp",
        "worker": worker_id,
    }, pack_array(outputs)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    faults = None
    if args.faults:
        faults = FaultPlan.from_dict(json.loads(args.faults))
    sock = socket.socket(fileno=args.socket_fd)
    registry = ModelRegistry(args.models_dir)
    loaded = _preload(registry)
    served = 0
    send_frame(sock, {
        "op": "ready",
        "worker": args.worker_id,
        "pid": os.getpid(),
        "models": loaded,
    })
    while True:
        try:
            header, payload = recv_frame(sock, timeout=None)
        except (ProtocolError, OSError):
            # The supervisor died or closed the channel; nothing to serve.
            return 0
        op = header.get("op")
        try:
            if op == "predict":
                # The kill point fires mid-flight, after the request is on
                # this worker's plate — the worst moment to die.
                if faults is not None:
                    faults.fire(SITE_WORKER_HANDLE)
                response, out_payload = _handle_predict(
                    registry, header, payload, args.worker_id
                )
                served += 1
            elif op == "ping":
                response, out_payload = {
                    "ok": True,
                    "op": "pong",
                    "worker": args.worker_id,
                    "pid": os.getpid(),
                    "served": served,
                    "models": registry.loaded_models(),
                }, b""
            elif op == "reload":
                name = header.get("model")
                names = [name] if name else registry.list_models()
                for model_name in names:
                    registry.reload(model_name)
                response, out_payload = {"ok": True, "op": "reload"}, b""
            elif op == "drain":
                send_frame(sock, {
                    "ok": True, "op": "drained", "served": served,
                })
                return 0
            else:
                response, out_payload = {
                    "ok": False, "kind": "ProtocolError",
                    "error": f"unknown op {op!r}",
                }, b""
        except Exception as exc:  # noqa: BLE001 - report, don't die
            response, out_payload = {
                "ok": False,
                "kind": type(exc).__name__,
                "error": str(exc),
            }, b""
        try:
            send_frame(sock, response, out_payload)
        except OSError:
            return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
