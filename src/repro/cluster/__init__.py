"""Multi-process inference cluster: supervised workers behind one router.

The in-process serving stack tops out at one interpreter: the GIL caps
predict throughput and a single wedged or killed thread of execution is a
full outage.  This package moves inference into N supervised worker
*processes*:

* :mod:`~repro.cluster.protocol` — the framed binary wire format between
  the front end and a worker (JSON header + raw float64 payload).
* :mod:`~repro.cluster.worker` — the ``python -m repro.cluster.worker``
  child: preloads every artifact, then serves predict/ping/reload/drain
  frames until told to stop (or killed — that is the point).
* :mod:`~repro.cluster.supervisor` — spawns the pool, heartbeats it,
  detects crashes and wedges, restarts with exponential backoff under a
  budget, and drains gracefully.
* :mod:`~repro.cluster.router` — rendezvous-hashes model names onto the
  ready workers, with wider replica sets for hot models.
* :mod:`~repro.cluster.engine` — the ``ServingEngine``-compatible facade:
  admission control, primary → sibling → surrogate failover, and trace
  propagation across the process boundary.
"""

from .engine import ClusterEngine
from .protocol import ProtocolError, WorkerCallError
from .router import RendezvousRouter
from .supervisor import (
    FAILED,
    READY,
    RESTARTING,
    STARTING,
    STOPPED,
    SUSPECT,
    WORKER_STATES,
    WorkerHandle,
    WorkerSupervisor,
)

__all__ = [
    "ClusterEngine",
    "ProtocolError",
    "WorkerCallError",
    "RendezvousRouter",
    "WorkerSupervisor",
    "WorkerHandle",
    "WORKER_STATES",
    "STARTING",
    "READY",
    "SUSPECT",
    "RESTARTING",
    "FAILED",
    "STOPPED",
]
