"""Model → worker routing: rendezvous hashing with hot-model replication.

Every model name owns an ordered *replica set* of workers, computed by
rendezvous (highest-random-weight) hashing: score every worker against the
model name with a keyed hash, sort descending, take the top ``replication``.
The properties that matter here:

* **Deterministic and coordination-free** — the router holds no table; any
  process hashing the same names gets the same answer.
* **Minimal disruption** — when a worker dies, only the models that had it
  in their replica set move, and they move to the next-highest scorer
  rather than reshuffling the whole ring (the classic consistent-hashing
  win, without maintaining a ring).
* **Ordered failover** — the replica list is a preference order: requests
  go to the primary (highest score), and a crash mid-flight retries on
  the next sibling in the same set, which — because workers preload every
  artifact — is guaranteed warm.

Hot models get a wider set: the router tracks per-model request counts,
and a model taking more than ``hot_share`` of recent traffic (once enough
requests have been seen) is replicated across ``hot_replication`` workers
instead of ``replication`` — the skewed-popularity regime the multi-server
queueing literature assumes away.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Sequence

__all__ = ["RendezvousRouter"]


def _score(model: str, worker_id: int) -> int:
    digest = hashlib.blake2b(
        f"{model}|{worker_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RendezvousRouter:
    """Order workers per model; widen the set for hot models.

    Parameters
    ----------
    replication:
        Replica-set size for a normal model (primary + siblings).
    hot_replication:
        Replica-set size once a model is hot; defaults to
        ``replication + 1``.
    hot_share / hot_min_requests:
        A model is hot when it has taken at least ``hot_share`` of all
        requests counted so far and at least ``hot_min_requests`` of its
        own — both guards, so a cold start or a niche model never
        triggers extra replication.
    """

    def __init__(
        self,
        replication: int = 2,
        hot_replication: int = 0,
        hot_share: float = 0.5,
        hot_min_requests: int = 256,
    ):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = int(replication)
        self.hot_replication = int(hot_replication) or self.replication + 1
        if self.hot_replication < self.replication:
            raise ValueError(
                f"hot_replication ({self.hot_replication}) must be >= "
                f"replication ({self.replication})"
            )
        self.hot_share = float(hot_share)
        self.hot_min_requests = int(hot_min_requests)
        self._counts: Dict[str, int] = {}
        self._total = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def record(self, model: str) -> None:
        """Count one request against ``model`` (drives hot detection)."""
        with self._lock:
            self._counts[model] = self._counts.get(model, 0) + 1
            self._total += 1

    def is_hot(self, model: str) -> bool:
        """Whether ``model`` currently earns the wider replica set."""
        with self._lock:
            count = self._counts.get(model, 0)
            total = self._total
        return (
            count >= self.hot_min_requests
            and total > 0
            and count / total >= self.hot_share
        )

    def replicas(self, model: str, workers: Sequence[int]) -> List[int]:
        """Preference-ordered replica set for ``model`` among ``workers``.

        ``workers`` is the currently-ready pool; dead workers simply are
        not offered, so failover falls out of the scoring order with no
        extra state.  Returns at most the (possibly hot-widened)
        replication factor, and every ready worker when the pool is
        smaller than that.
        """
        if not workers:
            return []
        k = (
            self.hot_replication if self.is_hot(model) else self.replication
        )
        ranked = sorted(
            workers, key=lambda w: _score(model, w), reverse=True
        )
        return ranked[: max(1, k)]

    def counts(self) -> Dict[str, int]:
        """Snapshot of the per-model request counters."""
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RendezvousRouter(replication={self.replication}, "
            f"hot_replication={self.hot_replication})"
        )
