"""Framed wire protocol between the supervisor and its worker processes.

Each message is one *frame* on a ``socketpair`` stream::

    [4-byte big-endian header length][JSON header][binary payload]

The header is a small JSON object; bulk numeric data (configuration
matrices in, prediction matrices out) rides as raw little-endian float64
bytes after it — ``payload_len`` in the header says how many.  Keeping
arrays out of JSON matters: the front end must stay cheap per request so
one router process can keep N compute-bound workers fed, and
``ndarray.tobytes()`` / ``np.frombuffer`` are two orders of magnitude
faster than JSON round-tripping the same floats.

Trace context crosses the process boundary in the header (``trace_id``,
``parent_span_id``, ``request_id``), so worker-side timings can be
re-attached to the originating request's trace by the router.

Ops
---
Parent → worker: ``predict``, ``ping``, ``reload``, ``drain``.
Worker → parent: ``ready`` (once, after artifacts are preloaded), then one
response frame per request (``ok: true`` with results, or ``ok: false``
with ``kind`` naming the exception class).

Everything here is synchronous and single-stream: the parent serializes
access to each worker socket with a per-worker lock, so a frame on the
wire is always the answer to the last request sent.  After any timeout or
short read the stream is *poisoned* (a late answer would desync it) —
callers must discard the channel and let the supervisor restart the
worker.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "ProtocolError",
    "WorkerCallError",
    "send_frame",
    "recv_frame",
    "pack_array",
    "unpack_array",
]

_LEN = struct.Struct(">I")

#: Refuse absurd frames instead of allocating unbounded buffers: the
#: largest legitimate frame is a 10k-config predict (~320 KiB of floats).
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 64 << 20


class ProtocolError(RuntimeError):
    """The byte stream violated the framing contract (poisoned channel)."""


class WorkerCallError(RuntimeError):
    """A call to a worker failed at the transport level.

    Raised by the supervisor for timeouts, resets, short reads, and
    worker-side crashes — everything that makes *this worker* suspect
    without saying anything about the request itself.  The router treats
    it as "try a sibling replica".
    """

    def __init__(self, worker_id: int, message: str):
        self.worker_id = worker_id
        super().__init__(f"worker {worker_id}: {message}")


def send_frame(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    """Write one frame; ``payload_len`` is stamped into the header."""
    if payload:
        header = dict(header, payload_len=len(payload))
    raw = json.dumps(header, separators=(",", ":")).encode()
    # One sendall: small frames must not straddle two syscalls.
    sock.sendall(_LEN.pack(len(raw)) + raw + payload)


def recv_frame(
    sock: socket.socket, timeout: Optional[float] = None
) -> Tuple[dict, bytes]:
    """Read one frame; raises ``socket.timeout`` / :class:`ProtocolError`.

    ``timeout`` bounds the *whole* frame read (set as the socket timeout
    for each underlying ``recv``), so a worker that stops mid-frame
    cannot wedge the caller.
    """
    sock.settimeout(timeout)
    raw_len = _recv_exact(sock, _LEN.size)
    (header_len,) = _LEN.unpack(raw_len)
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} exceeds bound")
    try:
        header = json.loads(_recv_exact(sock, header_len))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    payload_len = int(header.get("payload_len", 0))
    if payload_len < 0 or payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload length {payload_len} out of bounds")
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    return header, payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise on EOF (a dead/killed peer)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def pack_array(x: np.ndarray) -> bytes:
    """Serialize a 2-D float array as contiguous little-endian float64."""
    return np.ascontiguousarray(x, dtype="<f8").tobytes()


def unpack_array(payload: bytes, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_array`; validates the byte count."""
    expected = rows * cols * 8
    if len(payload) != expected:
        raise ProtocolError(
            f"array payload holds {len(payload)} bytes, expected {expected} "
            f"for a ({rows}, {cols}) float64 matrix"
        )
    return (
        np.frombuffer(payload, dtype="<f8").reshape(rows, cols).copy()
    )
