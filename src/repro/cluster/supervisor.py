"""Worker lifecycle management: spawn, heartbeat, restart, drain.

The supervisor owns N :mod:`repro.cluster.worker` processes and the
sockets to them.  Its job is the boring, load-bearing part of the cluster
story:

* **Pre-fork with preload.**  Workers are spawned at startup and only
  enter the ready pool after their ``ready`` frame — which a worker sends
  strictly after materializing every artifact — so routing never waits on
  a cold model parse.
* **Crash detection.**  A monitor thread polls ``Popen.poll()`` every
  tick: a SIGKILL'd or segfaulted worker is noticed within one heartbeat
  interval.  Transport errors during a call mark the worker *suspect*
  immediately (its channel is poisoned — a late reply would desync the
  stream), and the monitor converts suspects into restarts.
* **Wedge detection.**  A worker stuck inside one request past
  ``wedge_timeout`` (alive for ``waitpid``, silent on its socket) is
  SIGKILLed; the in-flight caller's recv fails fast and fails over.
  Idle workers are pinged; a missed heartbeat marks them suspect.
* **Exponential-backoff restarts with a budget.**  Each death schedules a
  respawn after ``backoff_base * 2^consecutive_failures`` (capped);
  surviving ``stable_after_s`` resets the exponent.  More than
  ``restart_budget`` restarts inside ``restart_window_s`` marks the
  worker **failed** — permanently out of the pool — and when every
  worker is failed the engine above degrades to its surrogate tier
  rather than erroring.
* **Graceful drain.**  :meth:`drain` sends each ready worker the
  ``drain`` op and waits for its acknowledgement — the per-worker half of
  the server's SIGTERM / ``/admin/drain`` sequence.

States: ``starting → ready ⇄ suspect → restarting → ready … → failed``,
with ``stopped`` terminal after :meth:`stop`.  Every transition lands in
the ``worker_state`` metrics gauge; every respawn increments
``worker_restarts_total``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple, Union

from .protocol import ProtocolError, WorkerCallError, recv_frame, send_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultPlan
    from ..serving.metrics import ServingMetrics

__all__ = [
    "WORKER_STATES",
    "STARTING",
    "READY",
    "SUSPECT",
    "RESTARTING",
    "FAILED",
    "STOPPED",
    "WorkerHandle",
    "WorkerSupervisor",
]

STARTING = "starting"
READY = "ready"
SUSPECT = "suspect"
RESTARTING = "restarting"
FAILED = "failed"
STOPPED = "stopped"

WORKER_STATES = (STARTING, READY, SUSPECT, RESTARTING, FAILED, STOPPED)


class WorkerHandle:
    """One supervised worker process plus its channel and bookkeeping."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.proc: Optional[subprocess.Popen] = None
        self.sock: Optional[socket.socket] = None
        self.state = STARTING
        #: Serializes all traffic on ``sock`` — one frame in flight.
        self.lock = threading.Lock()
        #: Callers queued on / holding :attr:`lock` (the queue-depth gauge).
        self.pending = 0
        #: ``perf_counter`` when the current call started (wedge detector).
        self.busy_since: Optional[float] = None
        self.started_at = 0.0
        self.last_heartbeat = 0.0
        self.restarts = 0
        self.consecutive_failures = 0
        self.restart_times: Deque[float] = deque()
        self.next_restart_at = 0.0
        self.models: List[str] = []
        self.pid: Optional[int] = None

    def to_dict(self) -> dict:
        """Status snapshot for ``/healthz`` and :meth:`WorkerSupervisor.status`."""
        return {
            "worker": self.worker_id,
            "state": self.state,
            "pid": self.pid,
            "restarts": self.restarts,
            "pending": self.pending,
            "models": list(self.models),
        }


class WorkerSupervisor:
    """Spawn and babysit N inference worker processes.

    Parameters
    ----------
    models_dir:
        Artifact directory every worker serves from (workers preload it).
    n_workers:
        Pool size.
    worker_faults:
        Optional :class:`~repro.reliability.faults.FaultPlan` (or its
        ``to_dict`` form) shipped to every worker as JSON — the
        ``worker.handle`` kill points (``kill_worker`` / ``hang_worker``
        / ``slow_worker``) fire inside the worker process.  Restarted
        workers get the plan afresh.
    heartbeat_interval / heartbeat_timeout:
        Monitor tick period and the budget an idle worker has to answer
        a ping before being marked suspect.
    wedge_timeout:
        How long one call may hold a worker before the monitor SIGKILLs
        it as wedged.
    restart_backoff_base / restart_backoff_cap:
        Exponential-backoff knobs between a death and its respawn.
    restart_budget / restart_window_s:
        More than ``restart_budget`` restarts inside the window marks the
        worker failed (no further respawns).
    stable_after_s:
        A worker surviving this long resets its backoff exponent.
    start_timeout:
        Budget for a spawned worker to preload artifacts and send
        ``ready``.
    metrics:
        Optional :class:`~repro.serving.metrics.ServingMetrics` receiving
        ``worker_state`` / ``worker_restarts_total`` / queue-depth gauges.
    """

    def __init__(
        self,
        models_dir: Union[str, Path],
        n_workers: int = 4,
        worker_faults: Optional[Union["FaultPlan", dict]] = None,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        wedge_timeout: float = 5.0,
        restart_backoff_base: float = 0.1,
        restart_backoff_cap: float = 5.0,
        restart_budget: int = 5,
        restart_window_s: float = 60.0,
        stable_after_s: float = 5.0,
        start_timeout: float = 30.0,
        metrics: Optional["ServingMetrics"] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.models_dir = Path(models_dir)
        if not self.models_dir.is_dir():
            raise ValueError(f"model directory {self.models_dir} does not exist")
        if worker_faults is not None and not isinstance(worker_faults, dict):
            worker_faults = worker_faults.to_dict()
        self.worker_faults = worker_faults
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.wedge_timeout = float(wedge_timeout)
        self.restart_backoff_base = float(restart_backoff_base)
        self.restart_backoff_cap = float(restart_backoff_cap)
        self.restart_budget = int(restart_budget)
        self.restart_window_s = float(restart_window_s)
        self.stable_after_s = float(stable_after_s)
        self.start_timeout = float(start_timeout)
        self.metrics = metrics
        self._handles = [WorkerHandle(i) for i in range(int(n_workers))]
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        """Spawn every worker, wait for all ready frames, start monitoring."""
        if self._started:
            return self
        self._started = True
        # Launch all processes first (they preload in parallel), then
        # collect ready frames — startup cost is max, not sum.
        for handle in self._handles:
            self._spawn(handle)
        for handle in self._handles:
            self._await_ready(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, handle: WorkerHandle) -> None:
        parent_sock, child_sock = socket.socketpair()
        argv = [
            sys.executable, "-m", "repro.cluster.worker",
            "--models-dir", str(self.models_dir),
            "--socket-fd", str(child_sock.fileno()),
            "--worker-id", str(handle.worker_id),
        ]
        if self.worker_faults is not None:
            argv += ["--faults", json.dumps(self.worker_faults)]
        env = dict(os.environ)
        # The worker must import repro from the same tree as this process,
        # venv-installed or PYTHONPATH=src alike.
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        handle.proc = subprocess.Popen(
            argv, pass_fds=(child_sock.fileno(),), env=env,
        )
        child_sock.close()
        handle.sock = parent_sock
        handle.pid = handle.proc.pid
        handle.started_at = time.monotonic()
        self._set_state(handle, STARTING)

    def _await_ready(self, handle: WorkerHandle) -> None:
        try:
            header, _ = recv_frame(handle.sock, timeout=self.start_timeout)
            if header.get("op") != "ready":
                raise ProtocolError(f"expected ready frame, got {header}")
        except (ProtocolError, OSError) as exc:
            self._terminate(handle)
            raise RuntimeError(
                f"worker {handle.worker_id} failed to start: {exc}"
            ) from exc
        handle.models = list(header.get("models", []))
        handle.last_heartbeat = time.monotonic()
        self._set_state(handle, READY)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def ready_ids(self) -> List[int]:
        """Worker ids currently accepting traffic."""
        return [h.worker_id for h in self._handles if h.state == READY]

    @property
    def n_workers(self) -> int:
        return len(self._handles)

    def handle(self, worker_id: int) -> WorkerHandle:
        return self._handles[worker_id]

    def call(
        self,
        worker_id: int,
        header: dict,
        payload: bytes = b"",
        timeout: Optional[float] = None,
    ) -> Tuple[dict, bytes]:
        """One request/response round trip on ``worker_id``'s channel.

        Raises :class:`WorkerCallError` on any transport failure —
        timeout, reset, short read, or a worker that died mid-call — and
        poisons the channel so the monitor restarts the worker.
        Application-level failures (``ok: false`` frames) are returned to
        the caller untouched; they say nothing about the worker's health.
        """
        handle = self._handles[worker_id]
        if handle.state != READY:
            raise WorkerCallError(
                worker_id, f"not accepting work (state={handle.state})"
            )
        with self._lock:
            handle.pending += 1
            self._gauge_depth(handle)
        try:
            with handle.lock:
                if handle.state != READY or handle.sock is None:
                    raise WorkerCallError(
                        worker_id,
                        f"not accepting work (state={handle.state})",
                    )
                handle.busy_since = time.monotonic()
                try:
                    send_frame(handle.sock, header, payload)
                    return recv_frame(handle.sock, timeout=timeout)
                except (ProtocolError, OSError) as exc:
                    # Channel poisoned: never reuse it.  The monitor will
                    # kill + restart; in-flight siblings are untouched.
                    self._mark_suspect(handle)
                    raise WorkerCallError(
                        worker_id, f"{type(exc).__name__}: {exc}"
                    ) from exc
                finally:
                    handle.busy_since = None
        finally:
            with self._lock:
                handle.pending -= 1
                self._gauge_depth(handle)

    # ------------------------------------------------------------------
    # chaos helpers
    # ------------------------------------------------------------------

    def kill_worker(self, worker_id: int, sig: int = signal.SIGKILL) -> int:
        """Send ``sig`` to a worker process (chaos testing); returns its pid."""
        handle = self._handles[worker_id]
        proc = handle.proc
        if proc is None or proc.poll() is not None:
            raise WorkerCallError(worker_id, "no live process to kill")
        os.kill(proc.pid, sig)
        self._wake.set()
        return proc.pid

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.heartbeat_interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            now = time.monotonic()
            for handle in self._handles:
                try:
                    self._tick(handle, now)
                except Exception:  # noqa: BLE001 - monitor must survive
                    pass

    def _tick(self, handle: WorkerHandle, now: float) -> None:
        state = handle.state
        if state in (FAILED, STOPPED, STARTING):
            return
        if state == RESTARTING:
            if now >= handle.next_restart_at:
                self._restart(handle)
            return
        # READY or SUSPECT from here on.
        proc = handle.proc
        if proc is None or proc.poll() is not None:
            # Crash detected (SIGKILL, segfault, clean exit — all the same
            # from out here): schedule the backoff respawn.
            self._begin_restart(handle, now, reason="process exited")
            return
        if state == SUSPECT:
            # A poisoned channel: the process may be alive but its stream
            # is unusable.  Kill and respawn.
            self._terminate(handle)
            self._begin_restart(handle, now, reason="suspect channel")
            return
        busy_since = handle.busy_since
        if busy_since is not None:
            if now - busy_since > self.wedge_timeout:
                # Wedged mid-request: alive by waitpid, dead by socket.
                # SIGKILL fails the in-flight caller fast (bulkhead), and
                # the next tick sees the corpse and schedules the respawn.
                self._terminate(handle)
            return
        # Idle: heartbeat when due.
        if now - handle.last_heartbeat < self.heartbeat_interval:
            return
        if not handle.lock.acquire(blocking=False):
            return  # raced a new call; activity is its own liveness proof
        try:
            if handle.state != READY or handle.sock is None:
                return
            try:
                send_frame(handle.sock, {"op": "ping"})
                header, _ = recv_frame(
                    handle.sock, timeout=self.heartbeat_timeout
                )
                if header.get("op") != "pong":
                    raise ProtocolError(f"expected pong, got {header}")
                handle.last_heartbeat = time.monotonic()
            except (ProtocolError, OSError):
                self._mark_suspect(handle)
        finally:
            handle.lock.release()

    def _begin_restart(self, handle: WorkerHandle, now: float, reason: str) -> None:
        self._close_sock(handle)
        if handle.started_at and now - handle.started_at > self.stable_after_s:
            handle.consecutive_failures = 0
        handle.consecutive_failures += 1
        # Budget check over the sliding window.
        window_start = now - self.restart_window_s
        while handle.restart_times and handle.restart_times[0] < window_start:
            handle.restart_times.popleft()
        if len(handle.restart_times) >= self.restart_budget:
            self._set_state(handle, FAILED)
            return
        backoff = min(
            self.restart_backoff_cap,
            self.restart_backoff_base
            * (2.0 ** (handle.consecutive_failures - 1)),
        )
        handle.next_restart_at = now + backoff
        self._set_state(handle, RESTARTING)

    def _restart(self, handle: WorkerHandle) -> None:
        handle.restart_times.append(time.monotonic())
        handle.restarts += 1
        if self.metrics is not None:
            self.metrics.record_worker_restart()
        try:
            self._spawn(handle)
            self._await_ready(handle)
        except Exception:  # noqa: BLE001 - a failed start is another failure
            self._begin_restart(
                handle, time.monotonic(), reason="start failed"
            )

    def _mark_suspect(self, handle: WorkerHandle) -> None:
        if handle.state == READY:
            self._set_state(handle, SUSPECT)
        self._wake.set()

    def _terminate(self, handle: WorkerHandle) -> None:
        proc = handle.proc
        if proc is not None and proc.poll() is None:
            try:
                proc.kill()
            except OSError:
                pass
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        self._close_sock(handle)

    def _close_sock(self, handle: WorkerHandle) -> None:
        sock = handle.sock
        handle.sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _set_state(self, handle: WorkerHandle, state: str) -> None:
        handle.state = state
        if self.metrics is not None:
            self.metrics.set_worker_state(str(handle.worker_id), state)

    def _gauge_depth(self, handle: WorkerHandle) -> None:
        if self.metrics is not None:
            self.metrics.set_worker_queue_depth(
                str(handle.worker_id), handle.pending
            )

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Snapshot for ``/healthz`` and the cluster engine's health()."""
        workers = [h.to_dict() for h in self._handles]
        return {
            "workers": workers,
            "ready": sum(1 for w in workers if w["state"] == READY),
            "failed": sum(1 for w in workers if w["state"] == FAILED),
            "restarts_total": sum(h.restarts for h in self._handles),
        }

    def drain(self, timeout: float = 10.0) -> dict:
        """Gracefully stop every worker; returns per-worker results.

        Ready workers get the ``drain`` op and a chance to acknowledge;
        everything still alive afterwards is killed.  The monitor stops
        first so nothing is restarted behind the drain's back.
        """
        self._stop_monitor()
        report = {}
        deadline = time.monotonic() + max(0.0, float(timeout))
        for handle in self._handles:
            drained = False
            if handle.state == READY and handle.sock is not None:
                budget = max(0.1, deadline - time.monotonic())
                acquired = handle.lock.acquire(timeout=budget)
                try:
                    if acquired and handle.sock is not None:
                        try:
                            send_frame(handle.sock, {"op": "drain"})
                            header, _ = recv_frame(
                                handle.sock,
                                timeout=max(0.1, deadline - time.monotonic()),
                            )
                            drained = bool(header.get("ok"))
                        except (ProtocolError, OSError):
                            drained = False
                finally:
                    if acquired:
                        handle.lock.release()
            report[handle.worker_id] = drained
            self._terminate(handle)
            self._set_state(handle, STOPPED)
        return report

    def stop(self) -> None:
        """Hard stop: kill everything, close every channel."""
        self._stop_monitor()
        for handle in self._handles:
            self._terminate(handle)
            if handle.state != STOPPED:
                self._set_state(handle, STOPPED)

    def _stop_monitor(self) -> None:
        self._stop.set()
        self._wake.set()
        monitor = self._monitor
        if monitor is not None and monitor.is_alive():
            monitor.join(timeout=5.0)

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
