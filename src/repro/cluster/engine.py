"""The multi-process serving engine: router + supervisor + degradation.

:class:`ClusterEngine` is interface-compatible with
:class:`~repro.serving.engine.ServingEngine` — the HTTP server, the
tuning engine, and the lifecycle tap all run unchanged on top of it — but
predictions execute in supervised worker *processes* instead of the
request thread, so the GIL stops being the throughput ceiling and a dead
worker stops being an outage.

The request path, in failure order:

1. **Admission** — identical to the in-process engine: draining sheds
   with 503 semantics, the hard in-flight bound sheds, the soft bound
   shortcuts to the surrogate tier.
2. **Routing** — the rendezvous router orders the ready workers into the
   model's replica set (wider for hot models).
3. **Primary call** — one framed round trip to the first replica.  The
   worker's own predict/handle timings come back in the response header
   and are re-recorded as ``worker.execute`` spans in the request's
   trace (trace context crossed the process boundary in the frame).
4. **Sibling failover** — a transport failure (SIGKILL mid-flight, wedge
   timeout, poisoned channel) retries the request once on the next
   replica, which preloaded the same artifacts and is warm.  Only the
   failed worker's in-flight requests pay; everyone else is insulated
   (bulkhead).
5. **Degraded surrogate** — when every replica fails, or no worker is
   ready at all (restart budget exhausted → supervisor gave up), the
   locally distilled linear surrogate answers, flagged ``degraded`` —
   the same contract the reliability layer established: a 2xx with
   honest provenance beats a connection reset.

Worker-side errors that are really *caller* errors (unknown model, bad
deadline) propagate as their exception types and are never failed over:
a sibling would only repeat them.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..observability.trace import NOOP_SPAN, Tracer
from ..reliability.degradation import (
    HealthMonitor,
    OverloadedError,
    fit_linear_surrogate,
)
from ..reliability.policies import Deadline, DeadlineExceeded
from ..serving.engine import PredictionResult, validate_config_matrix
from ..serving.metrics import ServingMetrics
from ..serving.registry import ModelRegistry
from ..workload.service import OUTPUT_NAMES
from .protocol import ProtocolError, WorkerCallError, pack_array, unpack_array
from .router import RendezvousRouter
from .supervisor import FAILED, READY, WorkerSupervisor

__all__ = ["ClusterEngine"]

_SURROGATE_SOURCE = "surrogate:linear"


class _Surrogate:
    __slots__ = ("mtime_ns", "model")

    def __init__(self, mtime_ns: int, model) -> None:
        self.mtime_ns = mtime_ns
        self.model = model


class ClusterEngine:
    """Serve predictions from a supervised pool of worker processes.

    Parameters
    ----------
    models_dir:
        Artifact directory shared by the local registry (surrogates,
        tuning) and every worker (primary inference).
    workers:
        Worker-process pool size.
    replication / hot_replication / hot_share / hot_min_requests:
        Router knobs (see :class:`~repro.cluster.router.RendezvousRouter`).
    failover_retries:
        Sibling attempts after the primary fails at the transport level.
    call_timeout:
        Per-call budget on a worker round trip (clamped by any request
        deadline).  A worker silent past this is treated as failed and
        the request fails over.
    fallback:
        Distill a linear surrogate per model (at startup, refreshed on
        artifact change) and answer from it, flagged degraded, when the
        worker path is exhausted.
    max_inflight / shed_inflight / retry_after_s:
        Admission control, same semantics as the in-process engine.
    worker_faults:
        Optional :class:`~repro.reliability.faults.FaultPlan` (or its
        dict form) shipped to every worker — the ``worker.handle`` kill
        points for chaos tests.
    tracing / tracer / trace_sample_rate / slow_trace_ms / trace_export:
        Observability wiring, identical to ``ServingEngine``.
    observer:
        Traffic tap ``observer(model, configs, outputs, source)`` — the
        lifecycle observation hook, called after every success.
    supervisor_options:
        Extra keyword arguments forwarded to
        :class:`~repro.cluster.supervisor.WorkerSupervisor` (heartbeat,
        backoff, and budget knobs — the chaos tests tighten these).
    """

    def __init__(
        self,
        models_dir: Union[str, Path],
        workers: int = 4,
        replication: int = 2,
        hot_replication: int = 0,
        hot_share: float = 0.5,
        hot_min_requests: int = 256,
        failover_retries: int = 1,
        call_timeout: float = 10.0,
        fallback: bool = True,
        max_inflight: Optional[int] = None,
        shed_inflight: Optional[int] = None,
        retry_after_s: float = 1.0,
        worker_faults=None,
        tracing: bool = True,
        tracer: Optional[Tracer] = None,
        trace_sample_rate: float = 1.0,
        slow_trace_ms: Optional[float] = 500.0,
        trace_export: Optional[Union[str, Path]] = None,
        observer: Optional[
            Callable[[str, np.ndarray, np.ndarray, str], None]
        ] = None,
        metrics: Optional[ServingMetrics] = None,
        supervisor_options: Optional[dict] = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if shed_inflight is not None and shed_inflight < 1:
            raise ValueError(f"shed_inflight must be >= 1, got {shed_inflight}")
        if failover_retries < 0:
            raise ValueError(
                f"failover_retries must be >= 0, got {failover_retries}"
            )
        self.registry = ModelRegistry(models_dir)
        self.fallback = bool(fallback)
        self.failover_retries = int(failover_retries)
        self.call_timeout = float(call_timeout)
        self.max_inflight = max_inflight
        self.shed_inflight = shed_inflight
        self.retry_after_s = float(retry_after_s)
        self.observer = observer
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.health_monitor = HealthMonitor()
        self._exporter = None
        if not tracing:
            self.tracer: Optional[Tracer] = None
        elif tracer is not None:
            self.tracer = tracer
            if self.tracer.on_span_end is None:
                self.tracer.on_span_end = self.metrics.span_observer()
        else:
            if trace_export is not None:
                from ..observability.trace import JsonlSpanExporter

                self._exporter = JsonlSpanExporter(trace_export)
            self.tracer = Tracer(
                sample_rate=trace_sample_rate,
                slow_threshold_s=(
                    None if slow_trace_ms is None else slow_trace_ms / 1000.0
                ),
                exporter=self._exporter,
                on_span_end=self.metrics.span_observer(),
            )
        if self.tracer is not None and self.registry.tracer is None:
            self.registry.tracer = self.tracer
        self.router = RendezvousRouter(
            replication=replication,
            hot_replication=hot_replication,
            hot_share=hot_share,
            hot_min_requests=hot_min_requests,
        )
        self.supervisor = WorkerSupervisor(
            models_dir,
            n_workers=workers,
            worker_faults=worker_faults,
            metrics=self.metrics,
            **(supervisor_options or {}),
        )
        # ServingEngine interface parity for the HTTP layer's /models:
        # cross-request micro-batching happens per HTTP request already
        # (multi-config bodies are one vectorized worker call).
        self.batching = False
        self.max_batch_size = 0
        self.max_wait_ms = 0.0
        self._surrogates: Dict[str, _Surrogate] = {}
        self._inflight = 0
        self._lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterEngine":
        """Spawn the worker pool and pre-distill the surrogate tier."""
        if self._started:
            return self
        self.supervisor.start()
        self._started = True
        if self.fallback:
            for name in self.registry.list_models():
                self._surrogate_for(name)
        return self

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def drain(self, timeout: float = 10.0) -> None:
        """Stop admission, let in-flight requests finish, drain workers."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        deadline = time.monotonic() + max(0.0, float(timeout))
        while time.monotonic() < deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            time.sleep(0.005)
        self.supervisor.drain(timeout=max(0.1, deadline - time.monotonic()))
        if self._exporter is not None:
            self._exporter.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self.supervisor.stop()
        if self._exporter is not None:
            self._exporter.close()

    def __enter__(self) -> "ClusterEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # serving interface
    # ------------------------------------------------------------------

    def list_models(self) -> List[str]:
        return self.registry.list_models()

    def reload(self, model_name: str) -> None:
        """Refresh the local registry/surrogate and nudge every worker.

        Workers hot-reload on their own (their registries re-check the
        artifact mtime per request), so the forward is best-effort — a
        worker mid-restart simply loads the new version at startup,
        which is the property the lifecycle promote path relies on.
        """
        self.registry.reload(model_name)
        self._surrogates.pop(model_name, None)
        if self.fallback:
            self._surrogate_for(model_name)
        for worker_id in self.supervisor.ready_ids():
            try:
                self.supervisor.call(
                    worker_id,
                    {"op": "reload", "model": model_name},
                    timeout=self.call_timeout,
                )
            except WorkerCallError:
                continue

    def predict(
        self,
        model_name: str,
        configs: Sequence[Sequence[float]],
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        return self.predict_detailed(model_name, configs, deadline).outputs

    def predict_one(
        self, model_name: str, config: Sequence[float]
    ) -> np.ndarray:
        return self.predict(model_name, [config])[0]

    def predict_detailed(
        self,
        model_name: str,
        configs: Sequence[Sequence[float]],
        deadline: Optional[Deadline] = None,
    ) -> PredictionResult:
        """Route one prediction through the cluster (see module docs).

        Raises :class:`OverloadedError` when shed, :class:`KeyError` for
        unknown models, :class:`DeadlineExceeded` when the budget dies,
        and the last transport error only when no surrogate can answer.
        """
        if not self._started:
            raise RuntimeError(
                "ClusterEngine.start() must run before predict()"
            )
        start = time.perf_counter()
        span = (
            self.tracer.start_span("cluster.predict")
            if self.tracer is not None
            else NOOP_SPAN
        )
        with span:
            x = validate_config_matrix(configs)
            if span is not NOOP_SPAN:
                span.set_attribute("model", model_name)
                span.set_attribute("n_configs", int(x.shape[0]))
            with self._lock:
                if self._draining or self._closed:
                    self.metrics.record_shed()
                    raise OverloadedError(
                        retry_after=self.retry_after_s,
                        message="cluster engine is draining",
                    )
                self._inflight += 1
                inflight = self._inflight
            try:
                if (
                    self.shed_inflight is not None
                    and inflight > self.shed_inflight
                ):
                    self.metrics.record_shed()
                    raise OverloadedError(retry_after=self.retry_after_s)
                soft_overloaded = (
                    self.max_inflight is not None
                    and inflight > self.max_inflight
                )
                self.router.record(model_name)
                result = self._predict_routed(
                    model_name, x, deadline, soft_overloaded
                )
            finally:
                with self._lock:
                    self._inflight -= 1
            if result.degraded:
                self.metrics.record_degraded()
            if span is not NOOP_SPAN:
                span.set_attribute("source", result.source)
        if self.observer is not None:
            try:
                self.observer(model_name, x, result.outputs, result.source)
            except Exception:  # noqa: BLE001 - capture must never fail serving
                pass
        self.metrics.record_request(x.shape[0], time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------

    def _predict_routed(
        self,
        model_name: str,
        x: np.ndarray,
        deadline: Optional[Deadline],
        soft_overloaded: bool,
    ) -> PredictionResult:
        if deadline is not None:
            deadline.check("cluster predict")
        surrogate = (
            self._surrogate_for(model_name) if self.fallback else None
        )
        if soft_overloaded and surrogate is not None:
            return self._answer_degraded(model_name, x, surrogate)
        if model_name not in self.registry:
            raise KeyError(f"unknown model {model_name!r}")
        replicas = self.router.replicas(
            model_name, self.supervisor.ready_ids()
        )
        payload = pack_array(x)
        last_error: Optional[BaseException] = None
        for attempt, worker_id in enumerate(
            replicas[: 1 + self.failover_retries]
        ):
            if attempt > 0:
                self.metrics.record_worker_failover()
            try:
                return self._call_worker(
                    model_name, x, payload, worker_id, attempt, deadline
                )
            except (WorkerCallError, _WorkerSideError) as exc:
                last_error = exc
                continue
        if surrogate is not None:
            return self._answer_degraded(model_name, x, surrogate)
        if last_error is not None:
            raise (
                last_error.cause
                if isinstance(last_error, _WorkerSideError)
                else last_error
            )
        raise OverloadedError(
            retry_after=self.retry_after_s,
            message=(
                f"no ready workers for model {model_name!r} and no "
                "surrogate fallback"
            ),
        )

    def _call_worker(
        self,
        model_name: str,
        x: np.ndarray,
        payload: bytes,
        worker_id: int,
        attempt: int,
        deadline: Optional[Deadline],
    ) -> PredictionResult:
        timeout = self.call_timeout
        header = {
            "op": "predict",
            "model": model_name,
            "n": int(x.shape[0]),
            "d": int(x.shape[1]),
        }
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining <= 0:
                raise DeadlineExceeded(
                    "prediction exceeded its deadline before reaching a worker"
                )
            header["deadline_ms"] = max(1.0, remaining * 1000.0)
            timeout = deadline.clamp(timeout)
        tracer = self.tracer
        call_span = (
            tracer.start_span(
                "worker.call",
                attributes={
                    "model": model_name,
                    "worker": worker_id,
                    "attempt": attempt,
                },
            )
            if tracer is not None
            else NOOP_SPAN
        )
        if call_span is not NOOP_SPAN and call_span.trace_id:
            # Trace context crosses the process boundary in the frame
            # header, so worker-side journals can be joined to this trace.
            header["trace_id"] = call_span.trace_id
            header["parent_span_id"] = call_span.span_id
        with call_span:
            try:
                resp, resp_payload = self.supervisor.call(
                    worker_id, header, payload, timeout=timeout
                )
            except WorkerCallError as exc:
                call_span.record_error(exc)
                raise
            if not resp.get("ok"):
                kind = resp.get("kind", "RuntimeError")
                error = resp.get("error", "worker error")
                if kind == "KeyError":
                    raise KeyError(f"unknown model {model_name!r}")
                if kind == "ValueError":
                    raise ValueError(error)
                if kind == "DeadlineExceeded":
                    raise DeadlineExceeded(error)
                exc = RuntimeError(f"worker {worker_id}: {kind}: {error}")
                call_span.record_error(exc)
                # Not a transport failure, but not a caller error either
                # (an artifact or model blew up in the worker): a sibling
                # with its own loaded copy may still answer.
                raise _WorkerSideError(exc)
            try:
                outputs = unpack_array(
                    resp_payload, int(resp["n"]), int(resp["m"])
                )
            except (KeyError, ValueError, ProtocolError) as exc:
                raise _WorkerSideError(
                    RuntimeError(f"worker {worker_id}: bad response: {exc}")
                ) from exc
            if outputs.shape[1] != len(OUTPUT_NAMES):
                raise _WorkerSideError(
                    RuntimeError(
                        f"worker {worker_id} returned {outputs.shape[1]} "
                        f"outputs, expected {len(OUTPUT_NAMES)}"
                    )
                )
            if call_span is not NOOP_SPAN:
                call_span.set_attribute("n_configs", int(x.shape[0]))
                predict_s = resp.get("predict_s")
                if predict_s is not None and tracer is not None:
                    # The worker's own forward-pass timing, re-attached
                    # to this trace as a retrospective child span.
                    tracer.record_span(
                        "worker.execute",
                        duration_s=float(predict_s),
                        parent=call_span,
                        attributes={"worker": worker_id},
                    )
        return PredictionResult(
            outputs, degraded=False, source=f"worker:{worker_id}"
        )

    def _answer_degraded(
        self, model_name: str, x: np.ndarray, surrogate: _Surrogate
    ) -> PredictionResult:
        span = (
            self.tracer.start_span(
                "fallback.surrogate", attributes={"model": model_name}
            )
            if self.tracer is not None
            else NOOP_SPAN
        )
        with span:
            outputs = np.asarray(surrogate.model.predict(x), dtype=float)
        return PredictionResult(outputs, degraded=True, source=_SURROGATE_SOURCE)

    def _surrogate_for(self, model_name: str) -> Optional[_Surrogate]:
        """The distilled fallback for ``model_name``, refreshed on change.

        Best-effort by design: a stale surrogate is better than none, and
        none is better than an exception on the degradation path.
        """
        current = self._surrogates.get(model_name)
        try:
            entry = self.registry.get_entry(model_name)
        except Exception:  # noqa: BLE001 - artifact gone/corrupt: keep stale
            return current
        if current is not None and current.mtime_ns == entry.mtime_ns:
            return current
        try:
            surrogate = _Surrogate(
                entry.mtime_ns, fit_linear_surrogate(entry.model)
            )
        except Exception:  # noqa: BLE001 - fallback is best-effort
            return current
        with self._lock:
            self._surrogates[model_name] = surrogate
        return surrogate

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload: worker pool state as the evidence.

        Worker states are folded into the health monitor as pseudo
        breaker inputs (a not-ready worker reads as a tripped path), so
        the ``healthy/degraded/unhealthy`` contract — and its transition
        log — is exactly the one the single-process engine exposes.
        """
        status = self.supervisor.status()
        with self._lock:
            inflight = self._inflight
            draining = self._draining
            surrogates = sorted(self._surrogates)
        shedding = (
            self.shed_inflight is not None and inflight > self.shed_inflight
        )
        worker_paths = {
            f"worker:{w['worker']}": (
                "closed" if w["state"] == READY else "open"
            )
            for w in status["workers"]
        }
        servable = status["ready"] > 0 or (self.fallback and bool(surrogates))
        health_status = self.health_monitor.update(
            worker_paths, shedding=shedding, servable=servable
        )
        return {
            "status": health_status,
            "models": len(self.list_models()),
            "workers": status["workers"],
            "ready_workers": status["ready"],
            "failed_workers": status["failed"],
            "worker_restarts_total": status["restarts_total"],
            "fallbacks": surrogates,
            "inflight": inflight,
            "draining": draining,
        }


class _WorkerSideError(Exception):
    """An application-level worker failure eligible for sibling retry."""

    def __init__(self, cause: BaseException):
        self.cause = cause
        super().__init__(str(cause))
