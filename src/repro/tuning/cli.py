"""``repro-tune`` — ask a running ``repro-serve`` for configurations.

Three subcommands against the autotuning endpoints:

``recommend``
    One recommendation for an objective built from flags:

    .. code-block:: console

       $ repro-tune recommend --url http://127.0.0.1:8700 --model paper \\
             --objective slo --limit dealer_browse_rt=0.5 --budget 256

``sweep``
    The same objective across several seeds — a cheap robustness read:
    if five differently-seeded searches land on the same configuration,
    the recommendation is a property of the surface, not of the search.

``watch``
    Poll ``GET /recommendations`` and print standing-objective state —
    the operator's view of whether a lifecycle promote shifted the
    recommended configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from ..workload.service import INPUT_NAMES, OUTPUT_NAMES

__all__ = ["build_parser", "main"]


def _parse_limits(pairs: List[str]) -> List[Dict[str, float]]:
    """``indicator=value`` flags → constraint wire objects."""
    constraints = []
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(
                f"--limit needs indicator=value, got {pair!r}"
            )
        if name not in OUTPUT_NAMES:
            raise SystemExit(
                f"--limit {name!r}: unknown indicator "
                f"(expected one of {OUTPUT_NAMES})"
            )
        try:
            value = float(raw)
        except ValueError:
            raise SystemExit(
                f"--limit {pair!r}: value must be a number"
            ) from None
        constraints.append({"indicator": name, "max_value": value})
    return constraints


def _objective(args: argparse.Namespace) -> dict:
    objective: dict = {
        "kind": args.objective,
        "target": args.target,
        "constraints": _parse_limits(args.limit),
    }
    if args.penalty_weight is not None:
        objective["penalty_weight"] = args.penalty_weight
    if args.thread_cost is not None:
        objective["thread_cost"] = args.thread_cost
    return objective


def _print_recommendation(body: dict) -> None:
    config = body["config"]
    print("recommended configuration:")
    for name in INPUT_NAMES:
        print(f"  {name:>16} = {config[name]:g}")
    print("predicted indicators:")
    for name in OUTPUT_NAMES:
        print(f"  {name:>18} = {body['predicted'][name]:g}")
    feasible = "yes" if body["feasible"] else "NO"
    print(
        f"score {body['score']:g} | feasible {feasible} | "
        f"{body['evals']} evals ({body['seed_evals']} seed, "
        f"{body['refine_rounds']} refine rounds)"
    )
    rationale = body.get("rationale") or {}
    surface = rationale.get("surface_class", "unavailable")
    if surface == "unavailable":
        print(f"surface: unavailable ({rationale.get('reason', '?')})")
    else:
        print(f"surface: {surface} — {rationale.get('note', '')}")


def _client(args: argparse.Namespace):
    from ..serving.client import ServingClient

    return ServingClient(args.url, timeout=args.timeout)


def _cmd_recommend(args: argparse.Namespace) -> int:
    client = _client(args)
    body = client.recommend(
        args.model,
        objective=_objective(args),
        budget=args.budget,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        _print_recommendation(body)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    client = _client(args)
    objective = _objective(args)
    configs = {}
    for seed in range(args.seeds):
        body = client.recommend(
            args.model, objective=objective, budget=args.budget, seed=seed
        )
        key = tuple(body["config"][name] for name in INPUT_NAMES)
        configs.setdefault(key, []).append((seed, body["score"]))
        if args.json:
            print(json.dumps(body, sort_keys=True))
        else:
            vector = "  ".join(f"{v:g}" for v in key)
            print(f"seed {seed}: [{vector}]  score {body['score']:g}")
    if not args.json:
        print(
            f"{len(configs)} distinct configuration(s) across "
            f"{args.seeds} seeds"
            + (" — stable" if len(configs) == 1 else "")
        )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = _client(args)
    for iteration in range(args.iterations):
        payload = client.recommendations(limit=args.count)
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            stats = payload["stats"]
            print(
                f"cache {stats['cache_entries']}/{stats['cache_size']} | "
                f"standing {stats['standing_objectives']} | "
                f"history {stats['history']}"
            )
            for model, objectives in sorted(payload["standing"].items()):
                for state in objectives:
                    shifted = "SHIFTED" if state["shifted"] else "stable"
                    error = state.get("error")
                    suffix = f" | error: {error}" if error else ""
                    print(
                        f"  {model} [{state['objective']['kind']}]: "
                        f"{shifted}, {state['retunes']} retune(s), "
                        f"score {state['score']}{suffix}"
                    )
        if iteration + 1 < args.iterations:
            time.sleep(args.interval)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-tune`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description=(
            "Query a running repro-serve for configuration "
            "recommendations (POST /recommend)."
        ),
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8700",
        help="base URL of the serving endpoint",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="client socket timeout / deadline budget (seconds)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_objective_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="paper", help="model to tune")
        p.add_argument(
            "--objective",
            choices=["max_throughput", "slo", "cost"],
            default="max_throughput",
            help="what 'best configuration' means",
        )
        p.add_argument(
            "--target", default="effective_tps",
            help="indicator to maximize",
        )
        p.add_argument(
            "--limit", action="append", default=[],
            metavar="INDICATOR=VALUE",
            help="response-time bound (repeatable), e.g. "
                 "dealer_browse_rt=0.5",
        )
        p.add_argument(
            "--penalty-weight", type=float, default=None,
            help="score units removed per second of violation",
        )
        p.add_argument(
            "--thread-cost", type=float, default=None,
            help="score units charged per provisioned thread "
                 "(cost objective only)",
        )
        p.add_argument(
            "--budget", type=int, default=None,
            help="model evaluations for the search (server default if "
                 "omitted)",
        )
        p.add_argument("--json", action="store_true", help="print raw JSON")

    p_rec = sub.add_parser(
        "recommend", help="one recommendation for one objective"
    )
    add_objective_flags(p_rec)
    p_rec.add_argument("--seed", type=int, default=0, help="search seed")
    p_rec.set_defaults(func=_cmd_recommend)

    p_sweep = sub.add_parser(
        "sweep", help="the same objective across several seeds"
    )
    add_objective_flags(p_sweep)
    p_sweep.add_argument(
        "--seeds", type=int, default=5, help="number of seeds to sweep"
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_watch = sub.add_parser(
        "watch", help="poll standing-objective state"
    )
    p_watch.add_argument(
        "--interval", type=float, default=5.0, help="seconds between polls"
    )
    p_watch.add_argument(
        "--iterations", type=int, default=1,
        help="polls before exiting (watch forever with a large value)",
    )
    p_watch.add_argument(
        "--count", type=int, default=20, help="recent entries to request"
    )
    p_watch.add_argument("--json", action="store_true", help="print raw JSON")
    p_watch.set_defaults(func=_cmd_watch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from ..serving.client import ServingError

    try:
        return args.func(args)
    except ServingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
