"""The online recommendation engine behind ``POST /recommend``.

:class:`RecommendationEngine` productizes the paper's closing loop — use
the learned model to *pick configurations* — against the live serving
stack:

* searches run through :meth:`ServingEngine.predict`, so every sweep is
  one micro-batched vectorized pass that shares the prediction cache,
  circuit breakers, and deadline machinery with ordinary traffic;
* results are cached in an LRU keyed on ``(model, artifact version,
  objective, budget, seed)`` — a promoted or rolled-back artifact changes
  the version component, so a stale recommendation can never be served
  for a new model, and :meth:`on_model_updated` additionally drops the
  old entries and re-tunes *standing objectives* so ``GET /lifecycle``
  can report whether the recommended config shifted;
* every stage is traced (``tuning.cache`` / ``tuning.search`` /
  ``tuning.refine`` spans) and counted
  (``recommendations_total`` / ``recommendation_cache_hits_total`` /
  ``recommendation_search_evals_total``);
* recommendations are the lowest-priority tier: while the serving engine
  is draining or soft-overloaded, searches shed immediately with
  :class:`~repro.reliability.degradation.OverloadedError` rather than
  compete with live ``/predict`` traffic.

Payloads are deterministic: the search is a pure function of ``(artifact,
objective, budget, seed)`` and every float is rounded to 6 decimals on
the way out, so identical requests serialize byte-identically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.curvature import local_curvature
from ..observability.trace import NOOP_SPAN
from ..reliability.degradation import OverloadedError
from ..reliability.policies import Deadline
from ..workload.sampler import ConfigSpace
from ..workload.service import INPUT_NAMES
from .objectives import Objective
from .search import SearchStrategy

__all__ = ["RecommendationEngine"]

#: Decimals every outgoing float is rounded to — recommendations must
#: serialize byte-identically across repeats, and micro-batch composition
#: can jitter a BLAS result in the last bits.
_WIRE_DECIMALS = 6

#: The Hessian pair the surface-class rationale is computed over — the
#: paper's Figure 7/8 plane (default vs web queue threads).
_RATIONALE_PARAMS = ("default_threads", "web_threads")


def _round_floats(value):
    """Recursively round floats for a byte-stable wire form."""
    if isinstance(value, float):
        return round(value, _WIRE_DECIMALS)
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(v) for v in value]
    return value


class RecommendationEngine:
    """Serve configuration recommendations from the live model registry.

    Parameters
    ----------
    serving:
        The :class:`~repro.serving.engine.ServingEngine` searches run
        through (its metrics and tracer are reused).
    space:
        Configuration region to search; defaults to the paper's bracket.
    default_budget:
        Model evaluations per search when the request names none.
    cache_size:
        LRU bound on cached recommendations (``0`` disables caching).
    history_size:
        Recent recommendations kept for ``GET /recommendations``.
    max_budget:
        Hard per-request ceiling (a request cannot buy an unbounded
        sweep on a shared server).
    """

    def __init__(
        self,
        serving,
        space: Optional[ConfigSpace] = None,
        default_budget: int = 256,
        cache_size: int = 64,
        history_size: int = 64,
        max_budget: int = 4096,
        strategy: Optional[SearchStrategy] = None,
    ):
        if default_budget < 4:
            raise ValueError(
                f"default_budget must be >= 4, got {default_budget}"
            )
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.serving = serving
        self.space = space if space is not None else ConfigSpace()
        self.default_budget = int(default_budget)
        self.cache_size = int(cache_size)
        self.max_budget = int(max_budget)
        self.strategy = strategy or SearchStrategy(self.space)
        self.metrics = serving.metrics
        self.tracer = serving.tracer
        self._cache: "OrderedDict[Tuple, dict]" = OrderedDict()
        self._history: deque = deque(maxlen=int(history_size))
        #: Standing objectives re-tuned on every promote/rollback:
        #: ``{(model, canonical): {"objective", "budget", "seed", "last",
        #: "shifted", "retunes"}}``.
        self._standing: Dict[Tuple[str, str], dict] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------

    def recommend(
        self,
        model: str,
        objective: Objective,
        budget: Optional[int] = None,
        seed: int = 0,
        deadline: Optional[Deadline] = None,
        use_cache: bool = True,
    ) -> dict:
        """One recommendation: search, rationale, cache, history.

        Raises :class:`KeyError` for an unknown model,
        :class:`OverloadedError` when the serving engine is draining or
        soft-overloaded (recommendations are the first tier shed), and
        :class:`~repro.reliability.policies.DeadlineExceeded` when the
        caller's budget lapses mid-search.
        """
        if budget is None:
            budget = self.default_budget
        budget = int(budget)
        if not 4 <= budget <= self.max_budget:
            raise ValueError(
                f"budget must be in [4, {self.max_budget}], got {budget}"
            )
        seed = int(seed)
        self._check_admission()
        entry = self.serving.registry.get_entry(model)  # KeyError if unknown
        key = (model, entry.mtime_ns, objective.canonical(), budget, seed)

        cache_span = (
            self.tracer.start_span("tuning.cache", attributes={"model": model})
            if self.tracer is not None and self.cache_size > 0
            else NOOP_SPAN
        )
        with cache_span:
            cached = self._cache_get(key) if use_cache else None
            if cache_span is not NOOP_SPAN:
                cache_span.set_attribute("hit", cached is not None)
        if cached is not None:
            self.metrics.record_recommendation(evals=0, cache_hit=True)
            self._remember(cached, cached_hit=True)
            return dict(cached)

        search_span = (
            self.tracer.start_span(
                "tuning.search",
                attributes={
                    "model": model,
                    "objective": objective.kind,
                    "budget": budget,
                    "seed": seed,
                },
            )
            if self.tracer is not None
            else NOOP_SPAN
        )
        with search_span:
            result = self.strategy.run(
                lambda matrix: self.serving.predict(
                    model, matrix, deadline=deadline
                ),
                objective,
                budget=budget,
                seed=seed,
                deadline=deadline,
                on_phase=self._phase_hook(search_span),
            )
            if search_span is not NOOP_SPAN:
                search_span.set_attribute("evals", result.evals)
                search_span.set_attribute("score", round(result.score, 6))

        rationale = self._rationale(model, objective, result)
        payload = _round_floats(
            {
                "model": model,
                "objective": objective.to_dict(),
                "budget": budget,
                "seed": seed,
                "config": {
                    name: float(v)
                    for name, v in zip(INPUT_NAMES, result.vector)
                },
                "predicted": result.indicators(),
                "score": float(result.score),
                "feasible": bool(result.feasible),
                "evals": int(result.evals),
                "seed_evals": int(result.seed_evals),
                "refine_rounds": int(result.refine_rounds),
                "rationale": rationale,
                "artifact_mtime_ns": int(entry.mtime_ns),
            }
        )
        self.metrics.record_recommendation(
            evals=result.evals, cache_hit=False
        )
        self._cache_put(key, payload)
        self._remember(payload, cached_hit=False)
        return dict(payload)

    def _phase_hook(self, parent):
        """Record one ``tuning.refine`` child span after refinement."""
        if self.tracer is None:
            return None

        def on_phase(phase: str, details: dict) -> None:
            if phase == "refine":
                self.tracer.record_span(
                    "tuning.refine",
                    duration_s=0.0,
                    parent=None if parent is NOOP_SPAN else parent,
                    attributes={
                        "rounds": int(details.get("rounds", 0)),
                        "evals": int(details.get("evals", 0)),
                    },
                )

        return on_phase

    def _check_admission(self) -> None:
        """Shed the search before it starts when serving is under pressure."""
        serving = self.serving
        if serving.draining:
            raise OverloadedError(
                retry_after=serving.retry_after_s,
                message="tuning shed: serving engine is draining",
            )
        if (
            serving.max_inflight is not None
            and serving.inflight >= serving.max_inflight
        ):
            self.metrics.record_shed()
            raise OverloadedError(
                retry_after=serving.retry_after_s,
                message=(
                    "tuning shed: serving engine is at its soft admission "
                    "bound; recommendations yield to live traffic"
                ),
            )

    # ------------------------------------------------------------------
    # rationale
    # ------------------------------------------------------------------

    def _rationale(
        self, model_name: str, objective: Objective, result
    ) -> dict:
        """Surface-class reading at the recommended point.

        The local Hessian of the objective's target indicator over the
        paper's (default, web) thread plane classifies the geometry —
        bowl (valley), dome (hill), saddle, flat — and its least-curved
        eigenvector is the "adjust two parameters concurrently" direction
        Section 5.2 recommends.  Non-joint or unfitted artifacts cannot
        be differentiated; the rationale degrades to ``unavailable``
        rather than failing the recommendation.
        """
        try:
            artifact = self.serving.registry.get(model_name)
            curvature = local_curvature(
                artifact,
                result.vector,
                objective.target,
                params=_RATIONALE_PARAMS,
            )
        except Exception as exc:  # noqa: BLE001 - rationale is best-effort
            return {
                "surface_class": "unavailable",
                "reason": f"{type(exc).__name__}: {exc}",
            }
        direction = curvature.trough_direction
        kind = curvature.kind
        advice = {
            "bowl": "recommended point sits in a valley; move along the "
                    "trough direction to trade parameters without losing "
                    "the optimum",
            "dome": "recommended point sits on a hill crest; both "
                    "parameters degrade the target when moved "
                    "independently",
            "saddle": "saddle geometry: the paired direction matters more "
                      "than either parameter alone",
            "flat": "locally flat: nearby configurations predict "
                    "near-identical indicators",
        }[kind]
        return {
            "surface_class": kind,
            "indicator": objective.target,
            "params": list(_RATIONALE_PARAMS),
            "eigenvalues": [float(v) for v in curvature.eigenvalues],
            "trough_direction": {
                _RATIONALE_PARAMS[0]: float(direction[0]),
                _RATIONALE_PARAMS[1]: float(direction[1]),
            },
            "gradient": [float(g) for g in curvature.gradient],
            "note": advice,
            "improvement_over_seed": float(
                result.score - result.seed_score
            ),
        }

    # ------------------------------------------------------------------
    # cache / history
    # ------------------------------------------------------------------

    def _cache_get(self, key: Tuple) -> Optional[dict]:
        with self._lock:
            payload = self._cache.get(key)
            if payload is not None:
                self._cache.move_to_end(key)
        return payload

    def _cache_put(self, key: Tuple, payload: dict) -> None:
        if self.cache_size == 0:
            return
        with self._lock:
            self._cache[key] = payload
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def invalidate_model(self, model: str) -> int:
        """Drop every cached recommendation for ``model``; returns count."""
        with self._lock:
            stale = [k for k in self._cache if k[0] == model]
            for k in stale:
                del self._cache[k]
            return len(stale)

    def _remember(self, payload: dict, cached_hit: bool) -> None:
        record = dict(payload)
        record["cached"] = bool(cached_hit)
        with self._lock:
            self._history.append(record)

    def recent(self, limit: int = 20) -> List[dict]:
        """Most recent recommendations, newest first."""
        with self._lock:
            records = list(self._history)
        return [dict(r) for r in reversed(records[-max(0, int(limit)):])]

    # ------------------------------------------------------------------
    # standing objectives (the lifecycle promote hook)
    # ------------------------------------------------------------------

    def register_standing(
        self,
        model: str,
        objective: Objective,
        budget: Optional[int] = None,
        seed: int = 0,
    ) -> dict:
        """Keep ``objective`` tuned across promotes; returns the baseline.

        The initial recommendation is computed immediately so a later
        re-tune has something to diff against.
        """
        payload = self.recommend(
            model, objective, budget=budget, seed=seed
        )
        with self._lock:
            self._standing[(model, objective.canonical())] = {
                "objective": objective,
                "budget": budget,
                "seed": int(seed),
                "last": payload,
                "shifted": False,
                "retunes": 0,
                "error": None,
            }
        return payload

    def on_model_updated(self, model: str) -> List[dict]:
        """Promote/rollback hook: invalidate, then re-tune standing goals.

        Returns one record per standing objective of ``model`` with the
        fresh recommendation and whether the recommended configuration
        *shifted* relative to the previous artifact — the signal surfaced
        under ``GET /lifecycle``.
        """
        invalidated = self.invalidate_model(model)
        with self._lock:
            standing = [
                (key, dict(state))
                for key, state in self._standing.items()
                if key[0] == model
            ]
        results = []
        for key, state in standing:
            record = {
                "model": model,
                "objective": state["objective"].to_dict(),
                "invalidated": invalidated,
            }
            previous = state["last"].get("config") if state["last"] else None
            try:
                fresh = self.recommend(
                    model,
                    state["objective"],
                    budget=state["budget"],
                    seed=state["seed"],
                )
            except Exception as exc:  # noqa: BLE001 - promote must survive
                record["error"] = f"{type(exc).__name__}: {exc}"
                with self._lock:
                    if key in self._standing:
                        self._standing[key]["error"] = record["error"]
                results.append(record)
                continue
            shifted = previous is not None and fresh["config"] != previous
            record.update(
                {
                    "previous_config": previous,
                    "config": fresh["config"],
                    "predicted": fresh["predicted"],
                    "score": fresh["score"],
                    "shifted": shifted,
                }
            )
            with self._lock:
                if key in self._standing:
                    state = self._standing[key]
                    state["last"] = fresh
                    state["shifted"] = shifted
                    state["retunes"] += 1
                    state["error"] = None
            results.append(record)
        return results

    def standing_status(self) -> dict:
        """JSON-serializable standing-objective state for ``/lifecycle``."""
        with self._lock:
            items = [
                (key, dict(state)) for key, state in self._standing.items()
            ]
        per_model: Dict[str, list] = {}
        for (model, _), state in items:
            per_model.setdefault(model, []).append(
                {
                    "objective": state["objective"].to_dict(),
                    "config": (
                        state["last"].get("config") if state["last"] else None
                    ),
                    "score": (
                        state["last"].get("score") if state["last"] else None
                    ),
                    "shifted": bool(state["shifted"]),
                    "retunes": int(state["retunes"]),
                    "error": state["error"],
                }
            )
        return per_model

    def stats(self) -> dict:
        """Cache/standing counters for ``GET /recommendations``."""
        with self._lock:
            return {
                "cache_entries": len(self._cache),
                "cache_size": self.cache_size,
                "standing_objectives": len(self._standing),
                "history": len(self._history),
                "default_budget": self.default_budget,
                "max_budget": self.max_budget,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecommendationEngine(cache={len(self._cache)}/"
            f"{self.cache_size}, standing={len(self._standing)})"
        )
