"""Tuning objectives: what "best configuration" means, as data.

The paper's Section 5.3 closes with "a system that recommends the best
configuration according to a scoring function"; an :class:`Objective` is
that scoring function made explicit, validatable, and serializable — the
JSON body of ``POST /recommend`` and the unit the recommendation cache
keys on.  Three kinds cover the tuning conversations the surfaces
support:

``max_throughput``
    Maximize one indicator (default ``effective_tps``); optional
    constraints act as soft penalties.
``slo``
    Maximize the target subject to response-time service-level
    constraints — the "hit a p99 SLO" request.  Violations are penalized
    proportionally to the target's magnitude (the
    :class:`~repro.analysis.tuning.ScoringFunction` semantics), so an
    infeasible region can never outscore a feasible one nearby.
``cost``
    Cost-weighted composite: the ``slo`` score minus ``thread_cost`` per
    provisioned thread — throughput is not free when every thread is a
    billed core.

Scores are *higher is better* everywhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..analysis.tuning import ScoringFunction
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES

__all__ = ["Constraint", "Objective", "OBJECTIVE_KINDS"]

OBJECTIVE_KINDS = ("max_throughput", "slo", "cost")

#: Configuration coordinates priced by ``thread_cost`` (all thread pools).
_THREAD_INDICES = tuple(
    i for i, name in enumerate(INPUT_NAMES) if name.endswith("_threads")
)


@dataclass(frozen=True)
class Constraint:
    """An upper bound one predicted indicator must respect."""

    indicator: str
    max_value: float

    def __post_init__(self):
        if self.indicator not in OUTPUT_NAMES:
            raise ValueError(
                f"unknown indicator {self.indicator!r}; "
                f"expected one of {OUTPUT_NAMES}"
            )
        if not np.isfinite(self.max_value) or self.max_value <= 0:
            raise ValueError(
                f"constraint on {self.indicator!r} needs a positive finite "
                f"bound, got {self.max_value}"
            )

    def to_dict(self) -> dict:
        return {"indicator": self.indicator, "max_value": float(self.max_value)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Constraint":
        if not isinstance(payload, dict):
            raise ValueError(f"constraint must be an object, got {payload!r}")
        unknown = sorted(set(payload) - {"indicator", "max_value"})
        if unknown:
            raise ValueError(f"constraint has unknown field {unknown[0]!r}")
        if "indicator" not in payload or "max_value" not in payload:
            raise ValueError(
                "constraint needs 'indicator' and 'max_value' fields"
            )
        value = payload["max_value"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"constraint max_value must be a number, got {value!r}"
            )
        return cls(indicator=str(payload["indicator"]), max_value=float(value))


@dataclass(frozen=True)
class Objective:
    """A validated, serializable tuning goal.

    Parameters
    ----------
    kind:
        One of :data:`OBJECTIVE_KINDS`.
    target:
        The indicator to maximize (must name one of
        :data:`~repro.workload.service.OUTPUT_NAMES`).
    constraints:
        Upper bounds on predicted indicators; mandatory semantics for
        ``slo`` (an ``slo`` objective without constraints is rejected).
    penalty_weight:
        Score units removed per second of constraint violation, scaled
        by the target's magnitude (see
        :class:`~repro.analysis.tuning.ScoringFunction`).
    thread_cost:
        For ``cost``: score units charged per provisioned thread across
        the three pools.  Must be 0 for other kinds.
    """

    kind: str = "max_throughput"
    target: str = "effective_tps"
    constraints: Tuple[Constraint, ...] = field(default_factory=tuple)
    penalty_weight: float = 10.0
    thread_cost: float = 0.0

    def __post_init__(self):
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"unknown objective kind {self.kind!r}; "
                f"expected one of {OBJECTIVE_KINDS}"
            )
        if self.target not in OUTPUT_NAMES:
            raise ValueError(
                f"unknown target indicator {self.target!r}; "
                f"expected one of {OUTPUT_NAMES}"
            )
        object.__setattr__(self, "constraints", tuple(self.constraints))
        seen = set()
        for constraint in self.constraints:
            if not isinstance(constraint, Constraint):
                raise ValueError(
                    f"constraints must be Constraint instances, "
                    f"got {constraint!r}"
                )
            if constraint.indicator in seen:
                raise ValueError(
                    f"duplicate constraint on {constraint.indicator!r}"
                )
            seen.add(constraint.indicator)
        if self.kind == "slo" and not self.constraints:
            raise ValueError("an 'slo' objective needs at least one constraint")
        if self.penalty_weight < 0:
            raise ValueError(
                f"penalty_weight must be non-negative, "
                f"got {self.penalty_weight}"
            )
        if self.thread_cost < 0:
            raise ValueError(
                f"thread_cost must be non-negative, got {self.thread_cost}"
            )
        if self.thread_cost and self.kind != "cost":
            raise ValueError(
                f"thread_cost applies only to 'cost' objectives, "
                f"not {self.kind!r}"
            )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def scoring_function(self) -> ScoringFunction:
        """The indicator-only part as the advisor's scoring function."""
        return ScoringFunction(
            response_limits={
                c.indicator: c.max_value for c in self.constraints
            },
            throughput_indicator=self.target,
            penalty_weight=self.penalty_weight,
        )

    def score(
        self, indicators: Dict[str, float], vector: Sequence[float]
    ) -> float:
        """Score one (predicted indicators, configuration) pair."""
        base = self.scoring_function().score(indicators)
        if self.thread_cost:
            vector = np.asarray(vector, dtype=float)
            base -= self.thread_cost * float(
                sum(vector[i] for i in _THREAD_INDICES)
            )
        return base

    def score_rows(
        self, outputs: np.ndarray, vectors: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`score` over ``(n, outputs)`` predictions."""
        outputs = np.asarray(outputs, dtype=float)
        vectors = np.asarray(vectors, dtype=float)
        target = outputs[:, OUTPUT_NAMES.index(self.target)]
        penalty = np.zeros(outputs.shape[0])
        for constraint in self.constraints:
            j = OUTPUT_NAMES.index(constraint.indicator)
            penalty += np.maximum(0.0, outputs[:, j] - constraint.max_value)
        scores = target - self.penalty_weight * np.abs(target) * penalty
        if self.thread_cost:
            scores = scores - self.thread_cost * vectors[
                :, _THREAD_INDICES
            ].sum(axis=1)
        return scores

    def satisfied(self, indicators: Dict[str, float]) -> bool:
        """Whether every constraint holds for one indicator vector."""
        return all(
            indicators[c.indicator] <= c.max_value for c in self.constraints
        )

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The canonical JSON form (constraints sorted by indicator)."""
        return {
            "kind": self.kind,
            "target": self.target,
            "constraints": [
                c.to_dict()
                for c in sorted(self.constraints, key=lambda c: c.indicator)
            ],
            "penalty_weight": float(self.penalty_weight),
            "thread_cost": float(self.thread_cost),
        }

    def canonical(self) -> str:
        """A deterministic string key for caching and deduplication."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "Objective":
        """Parse and validate the wire form; raises ``ValueError``."""
        if not isinstance(payload, dict):
            raise ValueError(f"objective must be an object, got {payload!r}")
        allowed = {
            "kind", "target", "constraints", "penalty_weight", "thread_cost",
        }
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(f"objective has unknown field {unknown[0]!r}")
        constraints = payload.get("constraints", [])
        if not isinstance(constraints, (list, tuple)):
            raise ValueError("objective 'constraints' must be a list")
        for name in ("penalty_weight", "thread_cost"):
            if name in payload:
                value = payload[name]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(
                        f"objective {name} must be a number, got {value!r}"
                    )
        return cls(
            kind=str(payload.get("kind", "max_throughput")),
            target=str(payload.get("target", "effective_tps")),
            constraints=tuple(
                Constraint.from_dict(c) for c in constraints
            ),
            penalty_weight=float(payload.get("penalty_weight", 10.0)),
            thread_cost=float(payload.get("thread_cost", 0.0)),
        )
