"""The search strategy: Sobol/grid seeding, then coordinate refinement.

The paper reads its response surfaces by hand — find the valley, walk its
trough.  :class:`SearchStrategy` automates the read against a *served*
model: a low-discrepancy seed sweep (:func:`~repro.analysis.sobol.sobol_design`
plus the corner grid, scored through the existing
:class:`~repro.analysis.tuning.ConfigurationAdvisor`) brackets the
promising region in one vectorized evaluation, and coordinate descent
with step halving then refines the best seed — each round again a single
batched evaluation, so an entire budget-256 search costs a handful of
``predict`` calls rather than 256 round trips.

Everything is deterministic under ``(seed, budget)``: Sobol scrambling is
seeded, candidate sets are deduplicated in generation order, and score
ties break by configuration tuple order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.sobol import sobol_design
from ..analysis.tuning import ConfigurationAdvisor
from ..reliability.policies import Deadline
from ..workload.sampler import ConfigSpace, full_factorial
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES, WorkloadConfig
from .objectives import Objective

__all__ = ["SearchResult", "SearchStrategy"]


@dataclass
class SearchResult:
    """Outcome of one configuration search."""

    #: Best configuration found, in :data:`INPUT_NAMES` order.
    vector: np.ndarray
    #: Predicted indicators at :attr:`vector`, in OUTPUT_NAMES order.
    outputs: np.ndarray
    #: Objective score of the best configuration.
    score: float
    #: Whether every constraint holds at the best configuration.
    feasible: bool
    #: Total model evaluations spent (seed + refinement).
    evals: int
    #: Model evaluations spent in the seed sweep.
    seed_evals: int
    #: Coordinate-descent rounds run.
    refine_rounds: int
    #: Score of the best *seed*, before refinement (for rationale).
    seed_score: float = 0.0

    def indicators(self) -> Dict[str, float]:
        """The predicted outputs as ``{indicator: value}``."""
        return {
            name: float(v) for name, v in zip(OUTPUT_NAMES, self.outputs)
        }


class _CountingPredictor:
    """Wrap a batch-evaluate callable as the advisor's ``model`` duck type.

    Counts rows evaluated (the search budget's currency) and memoizes by
    quantized configuration so a revisited point never re-spends budget.
    """

    def __init__(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        deadline: Optional[Deadline] = None,
    ):
        self._evaluate = evaluate
        self._deadline = deadline
        self.evals = 0
        self._memo: Dict[Tuple, np.ndarray] = {}

    @staticmethod
    def _key(row: np.ndarray) -> Tuple:
        return tuple(round(float(v), 9) for v in row)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=float)
        out = np.empty((matrix.shape[0], len(OUTPUT_NAMES)))
        keys = [self._key(row) for row in matrix]
        miss = [i for i, k in enumerate(keys) if k not in self._memo]
        if miss:
            if self._deadline is not None:
                self._deadline.check("tuning search")
            fresh = np.asarray(
                self._evaluate(matrix[miss]), dtype=float
            )
            self.evals += len(miss)
            for i, row in zip(miss, fresh):
                self._memo[keys[i]] = row
        for i, k in enumerate(keys):
            out[i] = self._memo[k]
        return out


class SearchStrategy:
    """Sobol + grid seeding followed by coordinate-descent refinement.

    Parameters
    ----------
    space:
        The configuration region to search (the default brackets the
        paper's figures).
    seed_fraction:
        Share of the evaluation budget spent on the seed sweep; the rest
        funds refinement rounds.
    grid_levels:
        Corner-grid levels mixed into the seeds (``2`` = the 16 corners
        of the 4-D box; ``0`` disables the grid component).
    min_step:
        Refinement stops once every parameter's step falls below this
        (in parameter units; integer parameters floor at 1).
    """

    def __init__(
        self,
        space: Optional[ConfigSpace] = None,
        seed_fraction: float = 0.5,
        grid_levels: int = 2,
        min_step: float = 0.5,
    ):
        if not 0.0 < seed_fraction <= 1.0:
            raise ValueError(
                f"seed_fraction must be in (0, 1], got {seed_fraction}"
            )
        if grid_levels < 0:
            raise ValueError(f"grid_levels must be >= 0, got {grid_levels}")
        self.space = space if space is not None else ConfigSpace()
        self.seed_fraction = float(seed_fraction)
        self.grid_levels = int(grid_levels)
        self.min_step = float(min_step)

    # ------------------------------------------------------------------

    def _seed_candidates(self, n: int, seed: int) -> np.ndarray:
        """Sobol points plus the corner grid, deduplicated, ``<= n`` rows."""
        candidates: List[np.ndarray] = []
        seen = set()

        def add(vector: np.ndarray) -> None:
            key = tuple(vector)
            if key not in seen:
                seen.add(key)
                candidates.append(vector)

        if self.grid_levels:
            for config in full_factorial(self.space, self.grid_levels):
                add(self.space.clip(config.as_vector()))
        for config in sobol_design(self.space, n, seed=seed):
            add(config.as_vector())
        return np.vstack(candidates[:n])

    def run(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        objective: Objective,
        budget: int = 256,
        seed: int = 0,
        deadline: Optional[Deadline] = None,
        on_phase: Optional[Callable[[str, dict], None]] = None,
    ) -> SearchResult:
        """Search ``space`` for the best configuration under ``objective``.

        ``evaluate`` takes an ``(n, 4)`` configuration matrix and returns
        the ``(n, 5)`` predicted indicators — typically one
        :meth:`ServingEngine.predict` call, so the whole sweep rides the
        micro-batcher.  ``on_phase`` (used for tracing) is called as
        ``on_phase("seed" | "refine", details)`` after each phase.
        """
        if budget < 4:
            raise ValueError(f"budget must be >= 4, got {budget}")
        predictor = _CountingPredictor(evaluate, deadline=deadline)

        # ---- seed sweep: one vectorized scoring pass over the region --
        n_seed = max(2, int(budget * self.seed_fraction))
        seeds = self._seed_candidates(n_seed, seed)
        advisor = ConfigurationAdvisor(
            predictor,
            scoring=objective.scoring_function(),
            output_names=OUTPUT_NAMES,
        )
        ranked = advisor.evaluate(
            [WorkloadConfig.from_vector(row) for row in seeds]
        )
        # Re-rank under the full objective (the advisor's scoring function
        # cannot express configuration-dependent cost terms).
        vectors = np.vstack([r.config.as_vector() for r in ranked])
        outputs = np.vstack(
            [[r.predicted[name] for name in OUTPUT_NAMES] for r in ranked]
        )
        scores = objective.score_rows(outputs, vectors)
        order = sorted(
            range(len(ranked)),
            key=lambda i: (-scores[i], tuple(vectors[i])),
        )
        best_i = order[0]
        best_vector = vectors[best_i].copy()
        best_outputs = outputs[best_i].copy()
        best_score = float(scores[best_i])
        seed_evals = predictor.evals
        seed_score = best_score
        if on_phase is not None:
            on_phase("seed", {"evals": seed_evals, "score": best_score})

        # ---- refinement: coordinate descent with step halving ---------
        steps = np.array(
            [max((r.high - r.low) / 8.0, self.min_step)
             for r in self.space.ranges]
        )
        integer = np.array([r.integer for r in self.space.ranges])
        steps[integer] = np.maximum(np.round(steps[integer]), 1.0)
        rounds = 0
        while predictor.evals < budget:
            if deadline is not None:
                deadline.check("tuning refinement")
            proposals = []
            for j in range(len(INPUT_NAMES)):
                for direction in (-1.0, 1.0):
                    candidate = best_vector.copy()
                    candidate[j] += direction * steps[j]
                    candidate = self.space.clip(candidate)
                    if not np.array_equal(candidate, best_vector):
                        proposals.append(candidate)
            if not proposals:
                break
            matrix = np.vstack(proposals)
            remaining = budget - predictor.evals
            matrix = matrix[:remaining]
            outputs_m = predictor.predict(matrix)
            scores_m = objective.score_rows(outputs_m, matrix)
            order_m = sorted(
                range(matrix.shape[0]),
                key=lambda i: (-scores_m[i], tuple(matrix[i])),
            )
            top = order_m[0]
            rounds += 1
            if scores_m[top] > best_score:
                best_score = float(scores_m[top])
                best_vector = matrix[top].copy()
                best_outputs = outputs_m[top].copy()
            else:
                # No proposal improved: tighten every step.  A dimension
                # whose step fell below resolution (1 for integers,
                # min_step otherwise) stops proposing; the search ends
                # when all of them have.
                steps = steps / 2.0
                steps[integer] = np.floor(steps[integer])
                converged = np.where(
                    integer, steps < 1.0, steps < self.min_step
                )
                if converged.all():
                    break
                steps[converged] = 0.0
        if on_phase is not None:
            on_phase(
                "refine",
                {
                    "rounds": rounds,
                    "evals": predictor.evals - seed_evals,
                    "score": best_score,
                },
            )

        indicators = dict(zip(OUTPUT_NAMES, (float(v) for v in best_outputs)))
        return SearchResult(
            vector=best_vector,
            outputs=best_outputs,
            score=best_score,
            feasible=objective.satisfied(indicators),
            evals=predictor.evals,
            seed_evals=seed_evals,
            refine_rounds=rounds,
            seed_score=seed_score,
        )
