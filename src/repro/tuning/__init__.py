"""Online autotuning: the paper's closing loop, served.

The IISWC'06 paper ends where most users want to begin: "we can further
build a system that recommends the best configuration according to a
scoring function" (Section 5.3).  This package is that system, wired
into the serving and lifecycle stacks that the rest of the repo built:

* :mod:`~repro.tuning.objectives` — what "best" means, as validated,
  serializable data (:class:`Objective` / :class:`Constraint`);
* :mod:`~repro.tuning.search` — Sobol + corner-grid seeding followed by
  coordinate-descent refinement, all through batched model evaluations
  (:class:`SearchStrategy` / :class:`SearchResult`);
* :mod:`~repro.tuning.engine` — the cached, traced, load-shed-aware
  :class:`RecommendationEngine` behind ``POST /recommend`` and the
  lifecycle promote hook;
* :mod:`~repro.tuning.cli` — the ``repro-tune`` command.
"""

from .engine import RecommendationEngine
from .objectives import OBJECTIVE_KINDS, Constraint, Objective
from .search import SearchResult, SearchStrategy

__all__ = [
    "Constraint",
    "Objective",
    "OBJECTIVE_KINDS",
    "RecommendationEngine",
    "SearchResult",
    "SearchStrategy",
]
