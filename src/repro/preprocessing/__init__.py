"""Sample pre-processing (paper Section 3.1): standardization and pipelines."""

from .pipeline import ScaledEstimator
from .scalers import (
    IdentityScaler,
    MinMaxScaler,
    Scaler,
    StandardScaler,
    available_scalers,
    get_scaler,
)

__all__ = [
    "Scaler",
    "StandardScaler",
    "MinMaxScaler",
    "IdentityScaler",
    "get_scaler",
    "available_scalers",
    "ScaledEstimator",
]
