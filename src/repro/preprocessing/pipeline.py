"""Composable preprocessing around a fit/predict estimator.

A :class:`ScaledEstimator` bundles the paper's full recipe: standardize the
configuration parameters, (optionally) standardize the performance
indicators, train the inner model in scaled space, and automatically invert
the output scaling at prediction time so callers always see physical units.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .scalers import Scaler, get_scaler

__all__ = ["ScaledEstimator"]


class ScaledEstimator:
    """Wrap any fit/predict estimator with input/output scalers.

    Parameters
    ----------
    estimator:
        Object with ``fit(x, y, **fit_kwargs)`` and ``predict(x)``.
    x_scaler, y_scaler:
        Scaler names/instances (``None`` for identity).  Fresh statistics are
        learned on every :meth:`fit` call.
    """

    def __init__(
        self,
        estimator,
        x_scaler: Union[str, Scaler, None] = "standard",
        y_scaler: Union[str, Scaler, None] = "standard",
    ):
        self.estimator = estimator
        self.x_scaler = get_scaler(x_scaler)
        self.y_scaler = get_scaler(y_scaler)
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._fitted

    def fit(self, x: np.ndarray, y: np.ndarray, **fit_kwargs):
        """Fit scalers on the data, then the estimator in scaled space.

        Returns whatever the inner estimator's ``fit`` returns (training
        results for a :class:`~repro.nn.training.Trainer`-style estimator).
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        scaled_x = self.x_scaler.fit_transform(x)
        scaled_y = self.y_scaler.fit_transform(y)
        result = self.estimator.fit(scaled_x, scaled_y, **fit_kwargs)
        self._fitted = True
        return result

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict in physical units (output scaling inverted)."""
        if not self._fitted:
            raise RuntimeError("predict() called before fit()")
        scaled_x = self.x_scaler.transform(np.asarray(x, dtype=float))
        scaled_y = self.estimator.predict(scaled_x)
        return self.y_scaler.inverse_transform(np.asarray(scaled_y, dtype=float))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScaledEstimator({self.estimator!r}, x_scaler={self.x_scaler!r}, "
            f"y_scaler={self.y_scaler!r})"
        )
