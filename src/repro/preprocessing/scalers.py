"""Feature scaling (paper Section 3.1).

The paper's pre-processing step: "each parameter must be standardized ...
subtracting the mean and then dividing it by the standard deviation of a
feature", producing zero-mean unit-variance features.  Without it,
randomly-initialized hyperplanes tend to miss the sample cloud entirely and
back-propagation stalls in a local minimum — the standardization ablation
bench reproduces exactly that failure.

Output-side standardization is applied "when approximating multiple
performance indicators at the same time" so that no single high-magnitude
indicator monopolizes the gradient; scalers here are therefore invertible
(:meth:`Scaler.inverse_transform`) so model predictions can be mapped back to
physical units.
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

import numpy as np

__all__ = [
    "Scaler",
    "StandardScaler",
    "MinMaxScaler",
    "IdentityScaler",
    "get_scaler",
    "register_scaler",
    "available_scalers",
]


def _as_2d(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=float)
    if a.ndim == 1:
        a = a.reshape(-1, 1)
    if a.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D data, got shape {a.shape}")
    return a


class Scaler:
    """Base class for invertible per-feature transforms."""

    name = "scaler"

    def fit(self, x: np.ndarray) -> "Scaler":
        """Learn per-feature statistics from ``x``; returns self."""
        raise NotImplementedError

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned transform."""
        raise NotImplementedError

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform` exactly (up to float rounding)."""
        raise NotImplementedError

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Convenience: ``fit(x).transform(x)``."""
        return self.fit(x).transform(x)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        raise NotImplementedError

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(f"{type(self).__name__} used before fit()")

    def _check_features(self, x: np.ndarray, n_features: int) -> np.ndarray:
        x = _as_2d(x)
        if x.shape[1] != n_features:
            raise ValueError(
                f"scaler was fitted on {n_features} features, got {x.shape[1]}"
            )
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(fitted={self.is_fitted})"


class StandardScaler(Scaler):
    """Zero mean, unit standard deviation per feature — the paper's choice.

    Constant features (zero variance) are centered but left unscaled, so the
    transform stays invertible.
    """

    name = "standard"

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = _as_2d(x)
        if x.shape[0] == 0:
            raise ValueError("cannot fit a scaler on zero samples")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = self._check_features(x, self.mean_.size)
        return (x - self.mean_) / self.scale_

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = self._check_features(x, self.mean_.size)
        return x * self.scale_ + self.mean_


class MinMaxScaler(Scaler):
    """Map each feature's training range onto ``[low, high]``.

    Useful when feeding logistic-output networks, whose range is (0, 1).
    Constant features map to the midpoint of the target interval.
    """

    name = "minmax"

    def __init__(self, low: float = 0.0, high: float = 1.0):
        if not low < high:
            raise ValueError(f"need low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.data_min_: Optional[np.ndarray] = None
        self.data_range_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.data_min_ is not None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = _as_2d(x)
        if x.shape[0] == 0:
            raise ValueError("cannot fit a scaler on zero samples")
        self.data_min_ = x.min(axis=0)
        data_range = x.max(axis=0) - self.data_min_
        self.data_range_ = np.where(data_range > 0, data_range, 1.0)
        self._constant = data_range == 0
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = self._check_features(x, self.data_min_.size)
        unit = (x - self.data_min_) / self.data_range_
        out = self.low + unit * (self.high - self.low)
        midpoint = 0.5 * (self.low + self.high)
        return np.where(self._constant, midpoint, out)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = self._check_features(x, self.data_min_.size)
        unit = (x - self.low) / (self.high - self.low)
        out = self.data_min_ + unit * self.data_range_
        return np.where(self._constant, self.data_min_, out)


class IdentityScaler(Scaler):
    """No-op scaler — stands in where the pipeline expects a scaler.

    The paper skips output standardization "if we only approximate one
    performance indicator"; this scaler expresses that choice explicitly,
    and powers the standardization-off ablation.
    """

    name = "identity"

    def __init__(self):
        self._n_features: Optional[int] = None

    @property
    def is_fitted(self) -> bool:
        return self._n_features is not None

    def fit(self, x: np.ndarray) -> "IdentityScaler":
        self._n_features = _as_2d(x).shape[1]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._check_features(x, self._n_features).copy()

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._check_features(x, self._n_features).copy()


_REGISTRY: Dict[str, Type[Scaler]] = {}


def register_scaler(cls: Type[Scaler]) -> Type[Scaler]:
    """Add a :class:`Scaler` subclass to the by-name registry."""
    if not issubclass(cls, Scaler):
        raise TypeError(f"{cls!r} is not a Scaler subclass")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (StandardScaler, MinMaxScaler, IdentityScaler):
    register_scaler(_cls)


def available_scalers() -> list:
    """Names accepted by :func:`get_scaler`, sorted."""
    return sorted(_REGISTRY)


def get_scaler(spec: Union[str, Scaler, None], **kwargs) -> Scaler:
    """Resolve a scaler from a name or instance; ``None`` means identity."""
    if spec is None:
        return IdentityScaler()
    if isinstance(spec, Scaler):
        if kwargs:
            raise ValueError("cannot pass kwargs with a Scaler instance")
        return spec
    if spec not in _REGISTRY:
        raise KeyError(f"unknown scaler {spec!r}; available: {available_scalers()}")
    return _REGISTRY[spec](**kwargs)
