"""The in-process serving engine: registry + cache + batchers + reliability.

:class:`ServingEngine` is the piece every front end shares — the HTTP
server, the benchmark, and embedded callers all route queries through it.
Each query first consults the :class:`~repro.serving.cache.PredictionCache`
(exact repeats skip the network entirely), then either goes through that
model's :class:`~repro.serving.batcher.MicroBatcher` (coalescing with
concurrent callers) or straight into one vectorized ``predict`` when
batching is off.  All traffic is counted in
:class:`~repro.serving.metrics.ServingMetrics`.

The engine is also where the reliability layer lives:

* a per-model :class:`~repro.reliability.policies.CircuitBreaker` guards
  the MLP path — repeated artifact/model failures open it, and recovery is
  probed half-open before trusting the path again;
* a linear surrogate is distilled from every model at registration (first
  successful load) and answers in the MLP's place when the primary path
  fails, the breaker is open, or the admission queue is past its soft
  bound — callers see a *degraded* 2xx instead of an error;
* admission control sheds load past the hard bound with
  :class:`~repro.reliability.degradation.OverloadedError` (HTTP 503 +
  ``Retry-After``), and a
  :class:`~repro.reliability.degradation.HealthMonitor` turns breaker +
  shedding state into the ``healthy/degraded/unhealthy`` answer on
  ``/healthz``;
* an optional :class:`~repro.reliability.policies.Deadline` rides each
  request from the client through here into the batcher wait.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..observability.trace import (
    NOOP_SPAN,
    STATUS_ERROR,
    JsonlSpanExporter,
    Tracer,
)
from ..reliability.degradation import (
    HealthMonitor,
    OverloadedError,
    fit_linear_surrogate,
)
from ..reliability.policies import (
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
)
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES
from .batcher import MicroBatcher
from .cache import PredictionCache
from .metrics import ServingMetrics
from .registry import ModelRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..durability.integrity import IntegrityGuard
    from ..models.linear import LinearWorkloadModel
    from ..reliability.faults import FaultPlan

__all__ = ["ServingEngine", "PredictionResult", "validate_config_matrix"]

_SURROGATE_SOURCE = "surrogate:linear"


def validate_config_matrix(configs: Sequence[Sequence[float]]) -> np.ndarray:
    """Coerce ``configs`` to a validated ``(n, len(INPUT_NAMES))`` matrix.

    The one admission contract every engine front end shares (in-process
    :class:`ServingEngine` and the multi-process cluster engine alike):
    two-dimensional, the paper's input order, finite floats.  Raises
    :class:`ValueError` otherwise.
    """
    x = np.asarray(configs, dtype=float)
    if x.ndim == 1:
        x = x.reshape(1, -1)
    if x.ndim != 2 or x.shape[1] != len(INPUT_NAMES):
        raise ValueError(
            f"configs must be (n, {len(INPUT_NAMES)}) in "
            f"{INPUT_NAMES} order, got shape {x.shape}"
        )
    if not np.all(np.isfinite(x)):
        raise ValueError("configs must be finite numbers")
    return x


@dataclass
class PredictionResult:
    """Outputs plus the provenance the HTTP layer surfaces to callers."""

    outputs: np.ndarray
    degraded: bool = False
    source: str = "mlp"


@dataclass
class _Surrogate:
    """A distilled fallback model pinned to the artifact it was fit from."""

    mtime_ns: int
    model: "LinearWorkloadModel"


class ServingEngine:
    """Serve predictions from every model in a registry directory.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry`, or a directory
        path to build one from.
    batching:
        Route queries through per-model micro-batchers.  Off, each
        request runs its own vectorized ``predict`` (still batched
        *within* a multi-config request).
    max_batch_size / max_wait_ms:
        Micro-batcher knobs (see :class:`~repro.serving.batcher.MicroBatcher`).
    cache_size / cache_decimals:
        Prediction-cache knobs; ``cache_size=0`` disables caching.
    fallback:
        Distill a linear surrogate from each model at registration and
        answer from it (flagged *degraded*) when the MLP path fails.
    max_inflight:
        Soft admission bound: above this many concurrent requests the
        engine answers from the surrogate instead of queueing on the
        batcher.  ``None`` disables the bound.
    shed_inflight:
        Hard admission bound: above this many concurrent requests the
        engine sheds with :class:`OverloadedError` (→ 503 + Retry-After).
        ``None`` disables shedding.
    breaker_window / breaker_failure_threshold / breaker_min_samples /
    breaker_reset_timeout:
        Per-model :class:`CircuitBreaker` knobs.
    retry_after_s:
        The ``Retry-After`` hint attached to shed requests.
    clock:
        Monotonic time source for the breakers (injectable for tests).
    faults:
        Optional :class:`~repro.reliability.faults.FaultPlan` handed to
        the registry (when built here) and every micro-batcher.
    observer:
        Optional traffic tap called after every successful prediction as
        ``observer(model_name, configs, outputs, source)`` with the
        ``(n, 4)`` configuration array and ``(n, 5)`` output array.  The
        continuous-learning loop (:mod:`repro.lifecycle`) feeds its
        :class:`~repro.lifecycle.observations.ObservationLog` through
        this hook; observer exceptions are swallowed so capture can
        never fail a request.
    tracing / tracer / trace_sample_rate / slow_trace_ms / trace_export:
        The observability layer.  By default the engine builds its own
        :class:`~repro.observability.trace.Tracer` (head-sampling at
        ``trace_sample_rate``, slow-span override at ``slow_trace_ms``,
        optional JSONL export to ``trace_export``) wired into the
        metrics' per-stage histograms; pass ``tracer`` to share one
        across components, or ``tracing=False`` to disable spans
        entirely.  Every predict emits an ``engine.predict`` span with
        ``cache.lookup``, ``batcher.queue_wait`` / ``batcher.execute``
        (or ``model.predict``), ``registry.load`` and
        ``fallback.surrogate`` children as the request exercises them.
    integrity:
        Optional :class:`~repro.durability.integrity.IntegrityGuard`
        attached to the registry: artifacts are sha256-verified on every
        (re)load, corrupt ones quarantined and — when the guard has a
        rollback hook — transparently replaced by the last verified-good
        stored version.  The guard's metrics default to this engine's.
    """

    def __init__(
        self,
        registry: Union[ModelRegistry, str, Path],
        batching: bool = True,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        cache_decimals: int = 6,
        fallback: bool = True,
        max_inflight: Optional[int] = None,
        shed_inflight: Optional[int] = None,
        breaker_window: int = 10,
        breaker_failure_threshold: float = 0.5,
        breaker_min_samples: int = 3,
        breaker_reset_timeout: float = 5.0,
        retry_after_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        faults: Optional["FaultPlan"] = None,
        observer: Optional[
            Callable[[str, np.ndarray, np.ndarray, str], None]
        ] = None,
        tracing: bool = True,
        tracer: Optional[Tracer] = None,
        trace_sample_rate: float = 1.0,
        slow_trace_ms: Optional[float] = 500.0,
        trace_export: Optional[Union[str, Path]] = None,
        integrity: Optional["IntegrityGuard"] = None,
    ):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry, faults=faults)
        if integrity is not None:
            registry.integrity = integrity
        self.registry = registry
        self.batching = bool(batching)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.fallback = bool(fallback)
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if shed_inflight is not None and shed_inflight < 1:
            raise ValueError(f"shed_inflight must be >= 1, got {shed_inflight}")
        self.max_inflight = max_inflight
        self.shed_inflight = shed_inflight
        self.breaker_window = int(breaker_window)
        self.breaker_failure_threshold = float(breaker_failure_threshold)
        self.breaker_min_samples = int(breaker_min_samples)
        self.breaker_reset_timeout = float(breaker_reset_timeout)
        self.retry_after_s = float(retry_after_s)
        self.clock = clock
        self.faults = faults
        self.observer = observer
        self.cache = PredictionCache(cache_size, decimals=cache_decimals)
        self.metrics = ServingMetrics(cache=self.cache)
        if integrity is not None and integrity.metrics is None:
            integrity.metrics = self.metrics
        self.health_monitor = HealthMonitor()
        self._exporter: Optional[JsonlSpanExporter] = None
        if not tracing:
            self.tracer: Optional[Tracer] = None
        elif tracer is not None:
            self.tracer = tracer
            if self.tracer.on_span_end is None:
                self.tracer.on_span_end = self.metrics.span_observer()
        else:
            if trace_export is not None:
                self._exporter = JsonlSpanExporter(trace_export)
            self.tracer = Tracer(
                sample_rate=trace_sample_rate,
                slow_threshold_s=(
                    None if slow_trace_ms is None else slow_trace_ms / 1000.0
                ),
                exporter=self._exporter,
                on_span_end=self.metrics.span_observer(),
            )
        # The registry traces its (rare) artifact loads into the same tree.
        if self.tracer is not None and self.registry.tracer is None:
            self.registry.tracer = self.tracer
        self._batchers: Dict[str, MicroBatcher] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._surrogates: Dict[str, _Surrogate] = {}
        self._seen_mtimes: Dict[str, int] = {}
        self._inflight = 0
        self._lock = threading.Lock()
        self._closed = False
        self._draining = False

    # ------------------------------------------------------------------

    def list_models(self) -> List[str]:
        """Model names servable right now."""
        return self.registry.list_models()

    def predict(
        self,
        model_name: str,
        configs: Sequence[Sequence[float]],
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        """Predict indicators for ``configs`` (rows in ``INPUT_NAMES`` order).

        Returns an ``(n, len(OUTPUT_NAMES))`` array in ``OUTPUT_NAMES``
        column order.  Raises :class:`KeyError` for an unknown model and
        :class:`ValueError` for malformed input.  See
        :meth:`predict_detailed` for the degraded/source annotations.
        """
        return self.predict_detailed(model_name, configs, deadline).outputs

    def predict_detailed(
        self,
        model_name: str,
        configs: Sequence[Sequence[float]],
        deadline: Optional[Deadline] = None,
    ) -> PredictionResult:
        """Like :meth:`predict` but reports whether a fallback answered.

        Raises :class:`OverloadedError` when the hard admission bound
        sheds the request, :class:`CircuitOpenError` when the breaker is
        open and no surrogate exists, and :class:`DeadlineExceeded` when
        the caller's budget lapses mid-request.
        """
        start = time.perf_counter()
        span = (
            self.tracer.start_span("engine.predict")
            if self.tracer is not None
            else NOOP_SPAN
        )
        with span:
            x = validate_config_matrix(configs)
            if span is not NOOP_SPAN:
                span.set_attribute("model", model_name)
                span.set_attribute("n_configs", int(x.shape[0]))

            with self._lock:
                if self._draining:
                    # Admission is closed: the caller should retry against
                    # another replica (503 + Retry-After at the HTTP layer).
                    self.metrics.record_shed()
                    raise OverloadedError(
                        retry_after=self.retry_after_s,
                        message="serving engine is draining",
                    )
                self._inflight += 1
                inflight = self._inflight
            try:
                if (
                    self.shed_inflight is not None
                    and inflight > self.shed_inflight
                ):
                    self.metrics.record_shed()
                    raise OverloadedError(retry_after=self.retry_after_s)
                soft_overloaded = (
                    self.max_inflight is not None
                    and inflight > self.max_inflight
                )
                result = self._predict_guarded(
                    model_name, x, deadline, soft_overloaded
                )
            finally:
                with self._lock:
                    self._inflight -= 1
            if result.degraded:
                self.metrics.record_degraded()
            if span is not NOOP_SPAN:
                span.set_attribute("source", result.source)
        if self.observer is not None:
            try:
                self.observer(model_name, x, result.outputs, result.source)
            except Exception:  # noqa: BLE001 - capture must never fail serving
                pass
        self.metrics.record_request(x.shape[0], time.perf_counter() - start)
        return result

    def predict_one(
        self, model_name: str, config: Sequence[float]
    ) -> np.ndarray:
        """Single-configuration convenience; returns a length-5 vector."""
        return self.predict(model_name, [config])[0]

    # ------------------------------------------------------------------
    # guarded prediction path
    # ------------------------------------------------------------------

    def _predict_guarded(
        self,
        model_name: str,
        x: np.ndarray,
        deadline: Optional[Deadline],
        soft_overloaded: bool,
    ) -> PredictionResult:
        breaker = self._breaker_for(model_name)
        surrogate = self._surrogates.get(model_name)
        shortcut_to_fallback = (
            soft_overloaded and self.fallback and surrogate is not None
        )
        primary_error: Optional[BaseException] = None
        if not shortcut_to_fallback and breaker.allow():
            try:
                outputs = self._predict_primary(model_name, x, deadline)
            except KeyError:
                # Unknown model (no artifact on disk) — a caller error,
                # not a path failure; don't move the breaker.
                breaker.cancel()
                raise
            except DeadlineExceeded:
                # The budget died waiting on this path: that is a primary
                # failure, but there is no time left to fall back.
                breaker.record_failure()
                raise
            except Exception as exc:  # noqa: BLE001 - routed to fallback
                breaker.record_failure()
                primary_error = exc
            else:
                breaker.record_success()
                return PredictionResult(outputs, degraded=False, source="mlp")
        surrogate = self._surrogates.get(model_name)
        if self.fallback and surrogate is not None:
            fallback_span = (
                self.tracer.start_span(
                    "fallback.surrogate", attributes={"model": model_name}
                )
                if self.tracer is not None
                else NOOP_SPAN
            )
            with fallback_span:
                outputs = np.asarray(surrogate.model.predict(x), dtype=float)
            return PredictionResult(
                outputs, degraded=True, source=_SURROGATE_SOURCE
            )
        if primary_error is not None:
            raise primary_error
        if soft_overloaded:
            self.metrics.record_shed()
            raise OverloadedError(retry_after=self.retry_after_s)
        error = CircuitOpenError(
            retry_after=max(breaker.retry_after(), 0.05),
            message=(
                f"model {model_name!r} is circuit-broken and has no "
                f"fallback; retry after {breaker.retry_after():.2f}s"
            ),
        )
        if self.tracer is not None:
            # A refused call has no duration worth measuring; record the
            # rejection itself so the trace shows *why* nothing ran.
            self.tracer.record_span(
                "breaker.rejected",
                duration_s=0.0,
                status=STATUS_ERROR,
                error=f"CircuitOpenError: {error}",
                attributes={"model": model_name},
            )
        raise error

    def _predict_primary(
        self,
        model_name: str,
        x: np.ndarray,
        deadline: Optional[Deadline],
    ) -> np.ndarray:
        """The original cache → batcher → model path (may raise freely)."""
        if deadline is not None:
            deadline.check("predict")
        entry = self.registry.get_entry(model_name)  # KeyError if unknown
        self._note_mtime(model_name, entry.mtime_ns)
        self._ensure_surrogate(model_name, entry)
        model = entry.model
        out = np.empty((x.shape[0], len(OUTPUT_NAMES)), dtype=float)
        miss_rows: List[int] = []
        # A disabled cache (max_entries=0) always misses; a span around
        # it would be pure hot-path overhead with no information.
        cache_span = (
            self.tracer.start_span("cache.lookup")
            if self.tracer is not None and self.cache.max_entries > 0
            else NOOP_SPAN
        )
        with cache_span:
            keys = [self.cache.key(model_name, row) for row in x]
            for i, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    out[i] = cached
                else:
                    miss_rows.append(i)
            if cache_span is not NOOP_SPAN:
                cache_span.set_attribute(
                    "hits", int(x.shape[0]) - len(miss_rows)
                )
                cache_span.set_attribute("misses", len(miss_rows))

        if miss_rows:
            # Duplicate configs inside one request (tuning sweeps repeat
            # themselves) run the network once and share the row.
            groups: Dict[tuple, List[int]] = {}
            for i in miss_rows:
                groups.setdefault(keys[i], []).append(i)
            lead_rows = [rows[0] for rows in groups.values()]
            if self.batching:
                batcher = self._batcher_for(model_name)
                futures = [batcher.submit(x[i]) for i in lead_rows]
                for i, future in zip(lead_rows, futures):
                    timeout = 30.0
                    if deadline is not None:
                        timeout = deadline.clamp(timeout)
                    try:
                        out[i] = future.result(timeout=timeout)
                    except TimeoutError:
                        if deadline is not None and deadline.expired:
                            raise DeadlineExceeded(
                                "prediction exceeded its deadline waiting "
                                "on the micro-batcher"
                            ) from None
                        raise
                self._record_batch_spans(futures)
            else:
                # No separate model.predict span here: on the unbatched
                # path the forward pass is the tail of engine.predict
                # (minus cache.lookup), so a child span would only double
                # the per-request tracing cost for information the parent
                # already carries.
                out[lead_rows] = model.predict(x[lead_rows])
            for rows in groups.values():
                out[rows[1:]] = out[rows[0]]
                self.cache.put(keys[rows[0]], out[rows[0]])
        return out

    def _record_batch_spans(self, futures) -> None:
        """Reconstruct the queue-wait / flush-execute split as child spans.

        The batcher worker stamps ``perf_counter`` timestamps on every
        future it resolves; once the results are in, one
        ``batcher.queue_wait`` / ``batcher.execute`` span pair is recorded
        retrospectively per distinct flushed batch (keyed by its flush
        start, since one request's rows can straddle batches).  This is
        the split micro-batching otherwise hides: time spent waiting for
        stragglers vs time inside the vectorized predict.
        """
        tracer = self.tracer
        if tracer is None:
            return
        parent = tracer.current_span()
        if parent is None or not parent.sampled:
            return
        now_perf = time.perf_counter()
        now_wall = time.time()
        seen = set()
        for future in futures:
            started = future.flush_started_at
            ended = future.flush_ended_at
            if started is None or ended is None or started in seen:
                continue
            seen.add(started)
            tracer.record_span(
                "batcher.queue_wait",
                duration_s=max(0.0, started - future.submitted_at),
                parent=parent,
                start_time=now_wall - (now_perf - future.submitted_at),
            )
            tracer.record_span(
                "batcher.execute",
                duration_s=max(0.0, ended - started),
                parent=parent,
                start_time=now_wall - (now_perf - started),
                attributes={"batch_size": future.batch_size},
            )

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload: status plus the evidence behind it."""
        models = self.list_models()
        breakers = {
            name: breaker.state for name, breaker in self._breakers.items()
        }
        with self._lock:
            inflight = self._inflight
            closed = self._closed
        shedding = (
            self.shed_inflight is not None and inflight > self.shed_inflight
        )
        open_without_fallback = [
            name
            for name, state in breakers.items()
            if state == OPEN
            and not (self.fallback and name in self._surrogates)
        ]
        servable = (
            not closed
            and bool(models)
            and (not breakers or len(open_without_fallback) < len(breakers))
        )
        status = self.health_monitor.update(
            breakers, shedding=shedding, servable=servable
        )
        return {
            "status": status,
            "models": len(models),
            "breakers": breakers,
            "fallbacks": sorted(self._surrogates),
            "inflight": inflight,
            "draining": self._draining,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def reload(self, model_name: str) -> None:
        """Hot-swap one model and drop its now-stale cached predictions."""
        self.registry.reload(model_name)
        self.cache.invalidate_model(model_name)
        with self._lock:
            batcher = self._batchers.pop(model_name, None)
        if batcher is not None:
            batcher.close()

    @property
    def draining(self) -> bool:
        """Whether admission is closed (``/readyz`` answers not-ready)."""
        with self._lock:
            return self._draining

    @property
    def inflight(self) -> int:
        """Requests currently past admission (drives the tuning shed tier)."""
        with self._lock:
            return self._inflight

    def drain(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: refuse new work, finish everything queued.

        Flips the engine into draining mode (new :meth:`predict` calls
        shed with 503 + Retry-After and ``/readyz`` reports not-ready),
        waits for the in-flight requests that already passed admission,
        completes every future already queued on the micro-batchers
        (``close(drain=True)``), and flushes the trace exporter.  The
        engine refuses new work afterwards; call it once, from the
        SIGTERM / ``/admin/drain`` path.  Idempotent.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
            batchers, self._batchers = list(self._batchers.values()), {}
            self._closed = True
        deadline = time.monotonic() + max(0.0, float(timeout))
        while time.monotonic() < deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            time.sleep(0.005)
        for batcher in batchers:
            batcher.close(timeout=timeout, drain=True)
        if self._exporter is not None:
            self._exporter.close()

    def close(self) -> None:
        """Stop every batcher worker thread and flush the trace export."""
        with self._lock:
            batchers, self._batchers = list(self._batchers.values()), {}
            self._closed = True
        for batcher in batchers:
            batcher.close()
        if self._exporter is not None:
            self._exporter.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _note_mtime(self, model_name: str, mtime_ns: int) -> None:
        """Invalidate cached predictions when the artifact was hot-swapped."""
        with self._lock:
            previous = self._seen_mtimes.get(model_name)
            self._seen_mtimes[model_name] = mtime_ns
        if previous is not None and previous != mtime_ns:
            self.cache.invalidate_model(model_name)

    def _ensure_surrogate(self, model_name: str, entry) -> None:
        """(Re)fit the fallback surrogate when the artifact changes.

        Registration-time distillation: the surrogate is fit from the
        loaded MLP the first time an artifact version serves, and the last
        good surrogate survives later load failures — that is the whole
        point of having it.
        """
        if not self.fallback:
            return
        current = self._surrogates.get(model_name)
        if current is not None and current.mtime_ns == entry.mtime_ns:
            return
        try:
            surrogate = fit_linear_surrogate(entry.model)
        except Exception:  # noqa: BLE001 - fallback is best-effort
            return
        with self._lock:
            self._surrogates[model_name] = _Surrogate(
                mtime_ns=entry.mtime_ns, model=surrogate
            )

    def _breaker_for(self, model_name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(model_name)
            if breaker is None:
                breaker = CircuitBreaker(
                    window=self.breaker_window,
                    failure_threshold=self.breaker_failure_threshold,
                    min_samples=self.breaker_min_samples,
                    reset_timeout=self.breaker_reset_timeout,
                    clock=self.clock,
                    name=model_name,
                    on_state_change=(
                        lambda old, new, name=model_name:
                        self.metrics.set_breaker_state(name, new)
                    ),
                )
                self._breakers[model_name] = breaker
                self.metrics.set_breaker_state(model_name, breaker.state)
            return breaker

    def _batcher_for(self, model_name: str) -> MicroBatcher:
        with self._lock:
            if self._closed:
                raise RuntimeError("predict() on a closed ServingEngine")
            batcher = self._batchers.get(model_name)
            if batcher is None:
                # The batcher resolves the model per flush so a hot
                # reload takes effect without restarting the worker.
                batcher = MicroBatcher(
                    lambda batch: self.registry.get(model_name).predict(batch),
                    max_batch_size=self.max_batch_size,
                    max_wait_ms=self.max_wait_ms,
                    on_batch=self.metrics.record_batch,
                    faults=self.faults,
                )
                self._batchers[model_name] = batcher
            return batcher
