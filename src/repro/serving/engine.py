"""The in-process serving engine: registry + cache + per-model batchers.

:class:`ServingEngine` is the piece every front end shares — the HTTP
server, the benchmark, and embedded callers all route queries through it.
Each query first consults the :class:`~repro.serving.cache.PredictionCache`
(exact repeats skip the network entirely), then either goes through that
model's :class:`~repro.serving.batcher.MicroBatcher` (coalescing with
concurrent callers) or straight into one vectorized ``predict`` when
batching is off.  All traffic is counted in
:class:`~repro.serving.metrics.ServingMetrics`.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..workload.service import INPUT_NAMES, OUTPUT_NAMES
from .batcher import MicroBatcher
from .cache import PredictionCache
from .metrics import ServingMetrics
from .registry import ModelRegistry

__all__ = ["ServingEngine"]


class ServingEngine:
    """Serve predictions from every model in a registry directory.

    Parameters
    ----------
    registry:
        A :class:`~repro.serving.registry.ModelRegistry`, or a directory
        path to build one from.
    batching:
        Route queries through per-model micro-batchers.  Off, each
        request runs its own vectorized ``predict`` (still batched
        *within* a multi-config request).
    max_batch_size / max_wait_ms:
        Micro-batcher knobs (see :class:`~repro.serving.batcher.MicroBatcher`).
    cache_size / cache_decimals:
        Prediction-cache knobs; ``cache_size=0`` disables caching.
    """

    def __init__(
        self,
        registry: Union[ModelRegistry, str, Path],
        batching: bool = True,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        cache_size: int = 1024,
        cache_decimals: int = 6,
    ):
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.batching = bool(batching)
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.cache = PredictionCache(cache_size, decimals=cache_decimals)
        self.metrics = ServingMetrics(cache=self.cache)
        self._batchers: Dict[str, MicroBatcher] = {}
        self._seen_mtimes: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------

    def list_models(self) -> List[str]:
        """Model names servable right now."""
        return self.registry.list_models()

    def predict(
        self, model_name: str, configs: Sequence[Sequence[float]]
    ) -> np.ndarray:
        """Predict indicators for ``configs`` (rows in ``INPUT_NAMES`` order).

        Returns an ``(n, len(OUTPUT_NAMES))`` array in ``OUTPUT_NAMES``
        column order.  Raises :class:`KeyError` for an unknown model and
        :class:`ValueError` for malformed input.
        """
        start = time.perf_counter()
        x = np.asarray(configs, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.ndim != 2 or x.shape[1] != len(INPUT_NAMES):
            raise ValueError(
                f"configs must be (n, {len(INPUT_NAMES)}) in "
                f"{INPUT_NAMES} order, got shape {x.shape}"
            )
        if not np.all(np.isfinite(x)):
            raise ValueError("configs must be finite numbers")

        entry = self.registry.get_entry(model_name)  # KeyError if unknown
        self._note_mtime(model_name, entry.mtime_ns)
        model = entry.model
        out = np.empty((x.shape[0], len(OUTPUT_NAMES)), dtype=float)
        miss_rows: List[int] = []
        keys = [self.cache.key(model_name, row) for row in x]
        for i, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is not None:
                out[i] = cached
            else:
                miss_rows.append(i)

        if miss_rows:
            # Duplicate configs inside one request (tuning sweeps repeat
            # themselves) run the network once and share the row.
            groups: Dict[tuple, List[int]] = {}
            for i in miss_rows:
                groups.setdefault(keys[i], []).append(i)
            lead_rows = [rows[0] for rows in groups.values()]
            if self.batching:
                batcher = self._batcher_for(model_name)
                futures = [batcher.submit(x[i]) for i in lead_rows]
                for i, future in zip(lead_rows, futures):
                    out[i] = future.result(timeout=30.0)
            else:
                out[lead_rows] = model.predict(x[lead_rows])
            for rows in groups.values():
                out[rows[1:]] = out[rows[0]]
                self.cache.put(keys[rows[0]], out[rows[0]])

        self.metrics.record_request(x.shape[0], time.perf_counter() - start)
        return out

    def predict_one(
        self, model_name: str, config: Sequence[float]
    ) -> np.ndarray:
        """Single-configuration convenience; returns a length-5 vector."""
        return self.predict(model_name, [config])[0]

    def reload(self, model_name: str) -> None:
        """Hot-swap one model and drop its now-stale cached predictions."""
        self.registry.reload(model_name)
        self.cache.invalidate_model(model_name)
        with self._lock:
            batcher = self._batchers.pop(model_name, None)
        if batcher is not None:
            batcher.close()

    def close(self) -> None:
        """Stop every batcher worker thread."""
        with self._lock:
            batchers, self._batchers = list(self._batchers.values()), {}
            self._closed = True
        for batcher in batchers:
            batcher.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _note_mtime(self, model_name: str, mtime_ns: int) -> None:
        """Invalidate cached predictions when the artifact was hot-swapped."""
        with self._lock:
            previous = self._seen_mtimes.get(model_name)
            self._seen_mtimes[model_name] = mtime_ns
        if previous is not None and previous != mtime_ns:
            self.cache.invalidate_model(model_name)

    def _batcher_for(self, model_name: str) -> MicroBatcher:
        with self._lock:
            if self._closed:
                raise RuntimeError("predict() on a closed ServingEngine")
            batcher = self._batchers.get(model_name)
            if batcher is None:
                # The batcher resolves the model per flush so a hot
                # reload takes effect without restarting the worker.
                batcher = MicroBatcher(
                    lambda batch: self.registry.get(model_name).predict(batch),
                    max_batch_size=self.max_batch_size,
                    max_wait_ms=self.max_wait_ms,
                    on_batch=self.metrics.record_batch,
                )
                self._batchers[model_name] = batcher
            return batcher
