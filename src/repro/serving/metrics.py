"""Serving observability: counters plus a ring-buffer latency histogram.

Monotonic counters track requests, predictions, batches, errors, and the
reliability layer's outcomes (degraded answers, shed requests); a
fixed-size ring buffer of recent request latencies yields p50/p95/p99
without unbounded memory, and a per-model gauge mirrors each circuit
breaker's state.  On top of the window, per-pipeline-stage fixed-bucket
:class:`~repro.observability.histogram.LatencyHistogram` instances (fed by
the tracing layer through :meth:`ServingMetrics.span_observer`) expose
Prometheus ``_bucket`` lines from which p50/p95/p99 per stage are
derivable by any backend.  Rendered two ways: a plain ``dict`` (for the
JSON-minded) and a Prometheus-style text exposition (for scrapers).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, Optional

import numpy as np

from ..observability.histogram import LatencyHistogram
from ..reliability.policies import BREAKER_STATES
from .cache import PredictionCache

__all__ = ["ServingMetrics", "WORKER_STATE_VALUES"]

_QUANTILES = (0.5, 0.95, 0.99)

#: Numeric encoding of cluster worker states for the Prometheus gauge
#: (mirrors ``repro.cluster.supervisor.WORKER_STATES``; defined here to
#: keep the metrics layer import-free of the cluster package).
WORKER_STATE_VALUES = {
    "starting": 0,
    "ready": 1,
    "suspect": 2,
    "restarting": 3,
    "failed": 4,
    "stopped": 5,
}


class ServingMetrics:
    """Thread-safe serving counters and latency percentiles.

    Parameters
    ----------
    window:
        Ring-buffer capacity for latency samples; percentiles describe the
        most recent ``window`` requests.
    cache:
        Optional :class:`~repro.serving.cache.PredictionCache` whose
        hit/miss counters are folded into the exposition.
    """

    def __init__(
        self, window: int = 1024, cache: Optional[PredictionCache] = None
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.cache = cache
        self.requests_total = 0
        self.predictions_total = 0
        self.batches_total = 0
        self.batched_items_total = 0
        self.errors_total = 0
        self.degraded_requests_total = 0
        self.shed_requests_total = 0
        # Continuous-learning loop (repro.lifecycle) counters.
        self.observations_total = 0
        self.retrains_total = 0
        self.promotions_total = 0
        self.rollbacks_total = 0
        # Durability (repro.durability) counters.
        self.artifact_verify_failures_total = 0
        self.artifacts_quarantined_total = 0
        self.auto_rollbacks_total = 0
        self.journal_records_recovered_total = 0
        self.journal_records_dropped_total = 0
        self.recoveries_total = 0
        # Autotuning (repro.tuning) counters.
        self.recommendations_total = 0
        self.recommendation_cache_hits_total = 0
        self.recommendation_search_evals_total = 0
        # Cluster (repro.cluster) counters and gauges.
        self.worker_restarts_total = 0
        self.worker_failovers_total = 0
        self._worker_states: Dict[str, str] = {}
        self._worker_queue_depths: Dict[str, int] = {}
        self._drift_scores: Dict[str, float] = {}
        self._breaker_states: Dict[str, str] = {}
        self._latencies = deque(maxlen=int(window))
        self._stage_hist: Dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_request(self, n_configs: int, latency_s: float) -> None:
        """One served request of ``n_configs`` configurations."""
        with self._lock:
            self.requests_total += 1
            self.predictions_total += int(n_configs)
            self._latencies.append(float(latency_s))

    def record_batch(self, batch_size: int) -> None:
        """One flushed micro-batch (hook for ``MicroBatcher.on_batch``)."""
        with self._lock:
            self.batches_total += 1
            self.batched_items_total += int(batch_size)

    def record_error(self) -> None:
        """One failed request (validation or model error)."""
        with self._lock:
            self.errors_total += 1

    def record_degraded(self) -> None:
        """One request answered by a fallback tier instead of the MLP."""
        with self._lock:
            self.degraded_requests_total += 1

    def record_shed(self) -> None:
        """One request refused by load shedding (503 + Retry-After)."""
        with self._lock:
            self.shed_requests_total += 1

    def record_observation(self, n: int = 1) -> None:
        """``n`` traffic observations captured by the lifecycle tap."""
        with self._lock:
            self.observations_total += int(n)

    def record_retrain(self) -> None:
        """One retraining run launched by the lifecycle orchestrator."""
        with self._lock:
            self.retrains_total += 1

    def record_promotion(self) -> None:
        """One candidate model promoted into the registry directory."""
        with self._lock:
            self.promotions_total += 1

    def record_rollback(self) -> None:
        """One promotion rolled back to the prior version."""
        with self._lock:
            self.rollbacks_total += 1

    def record_verify_failure(self) -> None:
        """One artifact whose bytes failed sha256 verification."""
        with self._lock:
            self.artifact_verify_failures_total += 1

    def record_quarantine(self) -> None:
        """One corrupt artifact moved into quarantine."""
        with self._lock:
            self.artifacts_quarantined_total += 1

    def record_auto_rollback(self) -> None:
        """One verified-good version redeployed over a corrupt artifact."""
        with self._lock:
            self.auto_rollbacks_total += 1

    def record_journal_recovered(self, n: int = 1) -> None:
        """``n`` journal records successfully replayed after a restart."""
        with self._lock:
            self.journal_records_recovered_total += int(n)

    def record_journal_dropped(self, n: int = 1) -> None:
        """``n`` journal records lost to torn tails / malformed lines."""
        with self._lock:
            self.journal_records_dropped_total += int(n)

    def record_recovery(self) -> None:
        """One startup recovery pass completed."""
        with self._lock:
            self.recoveries_total += 1

    def record_recommendation(self, evals: int = 0, cache_hit: bool = False) -> None:
        """One configuration recommendation served (``evals`` model rows)."""
        with self._lock:
            self.recommendations_total += 1
            self.recommendation_search_evals_total += int(evals)
            if cache_hit:
                self.recommendation_cache_hits_total += 1

    def record_worker_restart(self) -> None:
        """One cluster worker process respawned by the supervisor."""
        with self._lock:
            self.worker_restarts_total += 1

    def record_worker_failover(self) -> None:
        """One request retried on a sibling replica after a worker failure."""
        with self._lock:
            self.worker_failovers_total += 1

    def set_worker_state(self, worker: str, state: str) -> None:
        """Mirror one cluster worker's lifecycle state into the gauge."""
        if state not in WORKER_STATE_VALUES:
            raise ValueError(
                f"unknown worker state {state!r}; "
                f"expected one of {sorted(WORKER_STATE_VALUES)}"
            )
        with self._lock:
            self._worker_states[worker] = state

    def worker_states(self) -> Dict[str, str]:
        """Snapshot of the per-worker state gauge."""
        with self._lock:
            return dict(self._worker_states)

    def set_worker_queue_depth(self, worker: str, depth: int) -> None:
        """Mirror one worker's pending-call count (callers queued or active)."""
        with self._lock:
            self._worker_queue_depths[worker] = int(depth)

    def worker_queue_depths(self) -> Dict[str, int]:
        """Snapshot of the per-worker queue-depth gauge."""
        with self._lock:
            return dict(self._worker_queue_depths)

    def set_drift_score(self, model: str, score: float) -> None:
        """Mirror one model's latest configuration-drift score."""
        with self._lock:
            self._drift_scores[model] = float(score)

    def drift_scores(self) -> Dict[str, float]:
        """Snapshot of the per-model drift-score gauge."""
        with self._lock:
            return dict(self._drift_scores)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one duration into ``stage``'s fixed-bucket histogram."""
        with self._lock:
            hist = self._stage_hist.get(stage)
            if hist is None:
                hist = self._stage_hist[stage] = LatencyHistogram()
        hist.observe(seconds)

    def span_observer(self) -> Callable[[dict], None]:
        """An ``on_span_end`` hook feeding span durations into histograms.

        Wire it into a :class:`~repro.observability.trace.Tracer` and every
        recorded span becomes a sample in the histogram named after its
        stage (the span name) — the bridge between tracing and metrics.
        """

        cache: Dict[str, LatencyHistogram] = {}

        def observe(span: dict) -> None:
            duration = span.get("duration_s")
            if duration is None:
                return
            name = span["name"]
            # Per-observer histogram cache: after the first span of each
            # stage, the hot path skips the registry lock entirely.
            hist = cache.get(name)
            if hist is None:
                with self._lock:
                    hist = self._stage_hist.get(name)
                    if hist is None:
                        hist = self._stage_hist[name] = LatencyHistogram()
                cache[name] = hist
            hist.observe(duration)

        return observe

    def stage_latencies(self) -> Dict[str, dict]:
        """Per-stage quantile estimates: ``{stage: {p50, p95, p99, ...}}``."""
        with self._lock:
            histograms = dict(self._stage_hist)
        return {
            stage: hist.to_dict() for stage, hist in sorted(histograms.items())
        }

    def set_breaker_state(self, model: str, state: str) -> None:
        """Mirror one model's circuit-breaker state into the gauge."""
        if state not in BREAKER_STATES:
            raise ValueError(
                f"unknown breaker state {state!r}; "
                f"expected one of {sorted(BREAKER_STATES)}"
            )
        with self._lock:
            self._breaker_states[model] = state

    def breaker_states(self) -> Dict[str, str]:
        """Snapshot of the per-model breaker-state gauge."""
        with self._lock:
            return dict(self._breaker_states)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p95/p99 over the latency window (zeros when empty)."""
        with self._lock:
            samples = np.asarray(self._latencies, dtype=float)
        if samples.size == 0:
            return {f"p{int(q * 100)}": 0.0 for q in _QUANTILES}
        values = np.quantile(samples, _QUANTILES)
        return {
            f"p{int(q * 100)}": float(v) for q, v in zip(_QUANTILES, values)
        }

    @property
    def mean_batch_occupancy(self) -> float:
        """Average configurations per flushed micro-batch."""
        return (
            self.batched_items_total / self.batches_total
            if self.batches_total
            else 0.0
        )

    def to_dict(self) -> dict:
        """Snapshot of everything, JSON-serializable."""
        snapshot = {
            "requests_total": self.requests_total,
            "predictions_total": self.predictions_total,
            "errors_total": self.errors_total,
            "degraded_requests_total": self.degraded_requests_total,
            "shed_requests_total": self.shed_requests_total,
            "batches_total": self.batches_total,
            "batched_items_total": self.batched_items_total,
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "observations_total": self.observations_total,
            "retrains_total": self.retrains_total,
            "promotions_total": self.promotions_total,
            "rollbacks_total": self.rollbacks_total,
            "artifact_verify_failures_total":
                self.artifact_verify_failures_total,
            "artifacts_quarantined_total": self.artifacts_quarantined_total,
            "auto_rollbacks_total": self.auto_rollbacks_total,
            "journal_records_recovered_total":
                self.journal_records_recovered_total,
            "journal_records_dropped_total":
                self.journal_records_dropped_total,
            "recoveries_total": self.recoveries_total,
            "recommendations_total": self.recommendations_total,
            "recommendation_cache_hits_total":
                self.recommendation_cache_hits_total,
            "recommendation_search_evals_total":
                self.recommendation_search_evals_total,
            "worker_restarts_total": self.worker_restarts_total,
            "worker_failovers_total": self.worker_failovers_total,
            "worker_states": self.worker_states(),
            "worker_queue_depths": self.worker_queue_depths(),
            "drift_scores": self.drift_scores(),
            "breaker_states": self.breaker_states(),
            "latency_seconds": self.latency_quantiles(),
            "stage_latency_seconds": self.stage_latencies(),
        }
        if self.cache is not None:
            snapshot["cache"] = self.cache.stats()
        return snapshot

    def to_prometheus(self, prefix: str = "repro_serving") -> str:
        """Prometheus text exposition (counters + gauge-style quantiles)."""
        lines = []

        def emit(name, kind, help_text, value, labels=""):
            lines.append(f"# HELP {prefix}_{name} {help_text}")
            lines.append(f"# TYPE {prefix}_{name} {kind}")
            lines.append(f"{prefix}_{name}{labels} {value}")

        emit("requests_total", "counter", "Requests served.",
             self.requests_total)
        emit("predictions_total", "counter",
             "Configurations predicted.", self.predictions_total)
        emit("errors_total", "counter", "Failed requests.",
             self.errors_total)
        emit("degraded_requests_total", "counter",
             "Requests answered by a fallback tier.",
             self.degraded_requests_total)
        emit("shed_requests_total", "counter",
             "Requests refused by load shedding.", self.shed_requests_total)
        emit("batches_total", "counter", "Micro-batches flushed.",
             self.batches_total)
        emit("observations_total", "counter",
             "Traffic observations captured by the lifecycle tap.",
             self.observations_total)
        emit("retrains_total", "counter",
             "Lifecycle retraining runs.", self.retrains_total)
        emit("promotions_total", "counter",
             "Candidate models promoted.", self.promotions_total)
        emit("rollbacks_total", "counter",
             "Promotions rolled back.", self.rollbacks_total)
        emit("artifact_verify_failures_total", "counter",
             "Artifacts whose bytes failed sha256 verification.",
             self.artifact_verify_failures_total)
        emit("artifacts_quarantined_total", "counter",
             "Corrupt artifacts moved into quarantine.",
             self.artifacts_quarantined_total)
        emit("auto_rollbacks_total", "counter",
             "Verified-good versions redeployed over corrupt artifacts.",
             self.auto_rollbacks_total)
        emit("journal_records_recovered_total", "counter",
             "Observation journal records replayed after restart.",
             self.journal_records_recovered_total)
        emit("journal_records_dropped_total", "counter",
             "Observation journal records lost to torn tails.",
             self.journal_records_dropped_total)
        emit("recoveries_total", "counter",
             "Startup recovery passes completed.", self.recoveries_total)
        emit("recommendations_total", "counter",
             "Configuration recommendations served.",
             self.recommendations_total)
        emit("recommendation_cache_hits_total", "counter",
             "Recommendations answered from the LRU cache.",
             self.recommendation_cache_hits_total)
        emit("recommendation_search_evals_total", "counter",
             "Model evaluations spent in recommendation searches.",
             self.recommendation_search_evals_total)
        emit("worker_restarts_total", "counter",
             "Cluster worker processes respawned.",
             self.worker_restarts_total)
        emit("worker_failovers_total", "counter",
             "Requests retried on a sibling replica.",
             self.worker_failovers_total)
        worker_states = self.worker_states()
        if worker_states:
            lines.append(
                f"# HELP {prefix}_worker_state Cluster worker state "
                "(0=starting, 1=ready, 2=suspect, 3=restarting, 4=failed, "
                "5=stopped)."
            )
            lines.append(f"# TYPE {prefix}_worker_state gauge")
            for worker in sorted(worker_states):
                lines.append(
                    f'{prefix}_worker_state{{worker="{worker}"}} '
                    f"{WORKER_STATE_VALUES[worker_states[worker]]}"
                )
        depths = self.worker_queue_depths()
        if depths:
            lines.append(
                f"# HELP {prefix}_worker_queue_depth In-flight and queued "
                "calls per cluster worker."
            )
            lines.append(f"# TYPE {prefix}_worker_queue_depth gauge")
            for worker in sorted(depths):
                lines.append(
                    f'{prefix}_worker_queue_depth{{worker="{worker}"}} '
                    f"{depths[worker]}"
                )
        drift = self.drift_scores()
        if drift:
            lines.append(
                f"# HELP {prefix}_drift_score Latest configuration-drift "
                "score per model."
            )
            lines.append(f"# TYPE {prefix}_drift_score gauge")
            for model in sorted(drift):
                lines.append(
                    f'{prefix}_drift_score{{model="{model}"}} {drift[model]}'
                )
        emit("batch_occupancy_mean", "gauge",
             "Mean configurations per micro-batch.",
             self.mean_batch_occupancy)
        if self.cache is not None:
            stats = self.cache.stats()
            emit("cache_hits_total", "counter",
                 "Prediction cache hits.", stats["hits"])
            emit("cache_misses_total", "counter",
                 "Prediction cache misses.", stats["misses"])
            emit("cache_hit_rate", "gauge",
                 "Prediction cache hit rate.", stats["hit_rate"])
            emit("cache_entries", "gauge",
                 "Resident cache entries.", stats["size"])
        states = self.breaker_states()
        if states:
            lines.append(
                f"# HELP {prefix}_breaker_state Circuit-breaker state per "
                "model (0=closed, 1=half_open, 2=open)."
            )
            lines.append(f"# TYPE {prefix}_breaker_state gauge")
            for model in sorted(states):
                lines.append(
                    f'{prefix}_breaker_state{{model="{model}"}} '
                    f"{BREAKER_STATES[states[model]]}"
                )
        quantiles = self.latency_quantiles()
        lines.append(
            f"# HELP {prefix}_request_latency_seconds "
            "Request latency over the recent window."
        )
        lines.append(f"# TYPE {prefix}_request_latency_seconds summary")
        for name, value in quantiles.items():
            q = int(name[1:]) / 100.0
            lines.append(
                f'{prefix}_request_latency_seconds{{quantile="{q}"}} {value}'
            )
        with self._lock:
            histograms = sorted(self._stage_hist.items())
        if histograms:
            metric = f"{prefix}_stage_latency_seconds"
            lines.append(
                f"# HELP {metric} Pipeline-stage latency from traced spans."
            )
            lines.append(f"# TYPE {metric} histogram")
            for stage, hist in histograms:
                lines.extend(
                    hist.prometheus_lines(metric, f'stage="{stage}"')
                )
        return "\n".join(lines) + "\n"
