"""HTTP front end for the serving engine (stdlib ``http.server``).

Endpoints
---------
``POST /predict``
    Body: ``{"model": "<name>", "config": {...}}`` or
    ``{"model": "<name>", "configs": [{...}, ...]}`` where each config maps
    every name in :data:`~repro.workload.service.INPUT_NAMES` to a number.
    Response: ``{"model": ..., "predictions": [{indicator: value, ...}]}``
    with keys in :data:`~repro.workload.service.OUTPUT_NAMES` order, plus
    ``"degraded": true`` and a ``"source"`` when a fallback tier answered.
    Field-level validation failures return 400; unknown models return 404;
    shed / circuit-broken requests return 503 with a ``Retry-After``
    header; a blown ``X-Deadline-Ms`` budget returns 504.
``GET /models``
    Servable model names plus engine configuration.
``GET /healthz``
    The reliability state machine: ``{"status": "healthy" | "degraded" |
    "unhealthy", ...}`` — 200 while the service can still answer
    (possibly degraded), 503 when it cannot.
``GET /metrics``
    Prometheus text exposition (``?format=json`` for the dict form).
``GET /lifecycle``
    Continuous-learning status (drift scores, versions, counters) when a
    :mod:`repro.lifecycle` orchestrator is attached; 404 otherwise.
``GET /traces``
    Recent traces from the engine tracer's in-memory buffer, newest
    first: ``?limit=``, ``?min_duration_ms=``, ``?status=error``, and
    ``?slow=1`` (the slow-span log) filter; 404 when tracing is off.
``POST /recommend``
    Body: ``{"model": "<name>", "objective": {...}, "budget": N,
    "seed": S}`` where ``objective`` is the
    :meth:`~repro.tuning.objectives.Objective.to_dict` wire form.
    Runs a model-guided configuration search (see :mod:`repro.tuning`)
    and returns the best configuration, its predicted indicators, the
    objective score, and a response-surface rationale.  Identical
    ``(model version, objective, budget, seed)`` requests return
    byte-identical bodies (and usually hit the recommendation cache).
    Honours ``X-Deadline-Ms``; sheds with 503 while the engine is
    draining or soft-overloaded — recommendations always yield to live
    ``/predict`` traffic.  404 when tuning is disabled.
``GET /recommendations``
    Recent recommendations (newest first, ``?limit=``), standing
    objectives, and cache statistics; 404 when tuning is disabled.
``GET /readyz``
    Readiness (distinct from liveness): 200 while the engine admits new
    requests, 503 once draining has begun — the signal a load balancer
    uses to stop routing here before the process exits.
``POST /admin/drain``
    Begin graceful shutdown: flip ``/readyz`` to not-ready, shed new
    ``/predict`` calls (503 + Retry-After), complete everything already
    queued in the micro-batchers, fsync the observation journal, flush
    the trace exporter, and write the clean-shutdown marker the next
    startup's recovery pass consults.  The HTTP listener itself stays up
    (``/metrics`` and ``/readyz`` keep answering) until the process
    exits; ``SIGTERM`` runs the same sequence and then stops the server.

Callers may send an ``X-Deadline-Ms`` header on ``/predict``; the budget
is honoured through the engine into the micro-batcher wait.  Trace
context propagates via ``X-Trace-Id`` / ``X-Parent-Span-Id`` request
headers; every response — success, error, or degraded — carries an
``X-Request-Id`` (echoed from the request or generated) and, when the
request was traced, its ``X-Trace-Id``.

The server is a ``ThreadingHTTPServer``: each connection gets a thread, and
concurrent ``/predict`` requests coalesce in the engine's micro-batchers.

With ``--workers N`` the handler stack runs unchanged on top of a
:class:`~repro.cluster.engine.ClusterEngine` instead: predictions execute
in N supervised worker processes with crash isolation, sibling failover,
and surrogate degradation (see :mod:`repro.cluster` and docs/cluster.md).
"""

from __future__ import annotations

import argparse
import json
import math
import signal
import sys
import threading
import uuid
from pathlib import Path
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from ..observability.trace import (
    NOOP_SPAN,
    REQUEST_ID_HEADER,
    TRACE_ID_HEADER,
)
from ..reliability.degradation import UNHEALTHY, OverloadedError
from ..reliability.policies import CircuitOpenError, Deadline, DeadlineExceeded
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES
from .engine import ServingEngine

__all__ = ["ServingHTTPServer", "create_server", "build_parser", "main"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_CONFIGS_PER_REQUEST = 10_000


class _RequestError(Exception):
    """Validation failure carrying the HTTP status to report."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _parse_configs(payload: dict) -> Tuple[List[List[float]], bool]:
    """Extract config vectors from a /predict body; (vectors, was_single)."""
    if "config" in payload and "configs" in payload:
        raise _RequestError(400, "pass either 'config' or 'configs', not both")
    if "config" in payload:
        configs, single = [payload["config"]], True
    elif "configs" in payload:
        configs, single = payload["configs"], False
        if not isinstance(configs, list):
            raise _RequestError(400, "'configs' must be a list of objects")
        if not configs:
            raise _RequestError(400, "'configs' must not be empty")
        if len(configs) > _MAX_CONFIGS_PER_REQUEST:
            raise _RequestError(
                400,
                f"'configs' holds {len(configs)} items; the per-request "
                f"limit is {_MAX_CONFIGS_PER_REQUEST}",
            )
    else:
        raise _RequestError(400, "missing 'config' (object) or 'configs' (list)")

    vectors = []
    for index, config in enumerate(configs):
        label = "config" if single else f"configs[{index}]"
        if not isinstance(config, dict):
            raise _RequestError(400, f"{label}: expected an object")
        unknown = sorted(set(config) - set(INPUT_NAMES))
        if unknown:
            raise _RequestError(
                400,
                f"{label}.{unknown[0]}: unknown parameter "
                f"(expected {INPUT_NAMES})",
            )
        vector = []
        for name in INPUT_NAMES:
            if name not in config:
                raise _RequestError(400, f"{label}.{name}: missing")
            value = config[name]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _RequestError(400, f"{label}.{name}: expected a number")
            if value != value or value in (float("inf"), float("-inf")):
                raise _RequestError(400, f"{label}.{name}: must be finite")
            vector.append(float(value))
        vectors.append(vector)
    return vectors, single


class _Handler(BaseHTTPRequestHandler):
    server: "ServingHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------

    def _begin_request(self) -> None:
        """Per-request bookkeeping (handlers persist across keep-alive).

        Every response carries an ``X-Request-Id`` — echoed when the
        caller sent one, generated otherwise — so a client error report
        and a server log line can always be joined.
        """
        self._request_id = (
            self.headers.get(REQUEST_ID_HEADER) or uuid.uuid4().hex[:16]
        )
        self._trace_id: Optional[str] = None

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._begin_request()
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            health = self.server.engine.health()
            status = 503 if health["status"] == UNHEALTHY else 200
            self._send_json(status, health)
        elif parsed.path == "/readyz":
            draining = self.server.engine.draining
            payload = {
                "ready": not draining,
                "draining": draining,
                "models": len(self.server.engine.list_models()),
            }
            self._send_json(503 if draining else 200, payload)
        elif parsed.path == "/models":
            engine = self.server.engine
            self._send_json(
                200,
                {
                    "models": engine.list_models(),
                    "inputs": INPUT_NAMES,
                    "outputs": OUTPUT_NAMES,
                    "batching": engine.batching,
                    "max_batch_size": engine.max_batch_size,
                    "max_wait_ms": engine.max_wait_ms,
                },
            )
        elif parsed.path == "/metrics":
            if "format=json" in (parsed.query or ""):
                self._send_json(200, self.server.engine.metrics.to_dict())
            else:
                text = self.server.engine.metrics.to_prometheus()
                if not text.endswith("\n"):
                    text += "\n"
                self._send_raw(
                    200,
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
        elif parsed.path == "/traces":
            self._get_traces(parsed.query or "")
        elif parsed.path == "/recommendations":
            tuner = self.server.tuner
            if tuner is None:
                self._send_json(404, {"error": "tuning is disabled"})
            else:
                params = parse_qs(parsed.query or "")
                try:
                    limit = (
                        int(params["limit"][0]) if "limit" in params else 20
                    )
                except ValueError as exc:
                    self._send_json(
                        400, {"error": f"bad query parameter: {exc}"}
                    )
                    return
                self._send_json(
                    200,
                    {
                        "recent": tuner.recent(limit=limit),
                        "standing": tuner.standing_status(),
                        "stats": tuner.stats(),
                    },
                )
        elif parsed.path == "/lifecycle":
            lifecycle = self.server.lifecycle
            if lifecycle is None:
                self._send_json(
                    404, {"error": "no lifecycle orchestrator attached"}
                )
            else:
                try:
                    self._send_json(200, lifecycle.status())
                except Exception as exc:  # noqa: BLE001 - status must answer
                    self._send_json(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
        else:
            self._send_json(404, {"error": f"no route {parsed.path!r}"})

    def _get_traces(self, query: str) -> None:
        """``GET /traces``: the tracer's in-memory buffer, filtered."""
        tracer = self.server.engine.tracer
        if tracer is None:
            self._send_json(404, {"error": "tracing is disabled"})
            return
        params = parse_qs(query)
        try:
            limit = int(params["limit"][0]) if "limit" in params else 50
            min_duration_s = (
                float(params["min_duration_ms"][0]) / 1000.0
                if "min_duration_ms" in params
                else None
            )
        except ValueError as exc:
            self._send_json(400, {"error": f"bad query parameter: {exc}"})
            return
        status = params["status"][0] if "status" in params else None
        payload = {
            "sample_rate": tracer.sample_rate,
            "spans_recorded": tracer.spans_recorded,
            "dropped_spans": tracer.buffer.dropped_spans,
            "evicted_traces": tracer.buffer.evicted_traces,
        }
        if params.get("slow", ["0"])[0] not in ("0", "", "false"):
            payload["slow_spans"] = tracer.slow_spans()[-limit:]
        else:
            payload["traces"] = tracer.buffer.traces(
                limit=limit, min_duration_s=min_duration_s, status=status
            )
        self._send_json(200, payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._begin_request()
        path = urlparse(self.path).path
        if path == "/admin/drain":
            # Runs in this handler's thread (the server is threaded), so
            # /readyz and /metrics keep answering while futures drain.
            report = self.server.drain()
            self._send_json(200, report)
            return
        if path not in ("/predict", "/recommend"):
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        engine = self.server.engine
        tracer = engine.tracer
        if tracer is not None:
            span = tracer.start_span(
                "http.request",
                context=tracer.extract_context(self.headers),
                attributes={
                    "method": "POST",
                    "path": path,
                    "request_id": self._request_id,
                },
            )
            if span.trace_id:
                self._trace_id = span.trace_id
        else:
            span = NOOP_SPAN
        with span:
            if path == "/recommend":
                self._handle_recommend(engine, span)
            else:
                self._handle_predict(engine, tracer, span)

    def _handle_predict(self, engine, tracer, span) -> None:
        try:
            parse_span = (
                tracer.start_span("request.parse")
                if tracer is not None
                else NOOP_SPAN
            )
            with parse_span:
                payload = self._read_json()
                model_name = payload.get("model")
                if not isinstance(model_name, str) or not model_name:
                    raise _RequestError(
                        400, "model: expected a non-empty string"
                    )
                vectors, single = _parse_configs(payload)
                deadline = self._read_deadline()
                if parse_span is not NOOP_SPAN:
                    parse_span.set_attribute("n_configs", len(vectors))
            try:
                result = engine.predict_detailed(
                    model_name, vectors, deadline=deadline
                )
            except KeyError:
                raise _RequestError(
                    404,
                    f"unknown model {model_name!r}; "
                    f"available: {engine.list_models()}",
                ) from None
        except _RequestError as exc:
            engine.metrics.record_error()
            span.record_error(exc).set_attribute("http_status", exc.status)
            self._send_json(exc.status, {"error": str(exc)})
            return
        except (OverloadedError, CircuitOpenError) as exc:
            engine.metrics.record_error()
            retry_after = max(1, int(math.ceil(exc.retry_after)))
            span.record_error(exc).set_attribute("http_status", 503)
            self._send_json(
                503,
                {"error": str(exc), "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
            return
        except DeadlineExceeded as exc:
            engine.metrics.record_error()
            span.record_error(exc).set_attribute("http_status", 504)
            self._send_json(504, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - model/artifact failures
            engine.metrics.record_error()
            span.record_error(exc).set_attribute("http_status", 500)
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        span.set_attribute("http_status", 200)
        if result.degraded:
            span.set_attribute("degraded", True)
        predictions = [
            {name: float(row[j]) for j, name in enumerate(OUTPUT_NAMES)}
            for row in result.outputs
        ]
        body = {
            "model": model_name,
            "predictions": predictions,
            "degraded": result.degraded,
            "source": result.source,
        }
        if single:
            body["prediction"] = predictions[0]
        self._send_json(200, body)

    def _handle_recommend(self, engine, span) -> None:
        """``POST /recommend``: one configuration search via the tuner."""
        tuner = self.server.tuner
        try:
            if tuner is None:
                raise _RequestError(404, "tuning is disabled")
            payload = self._read_json()
            model_name = payload.get("model")
            if not isinstance(model_name, str) or not model_name:
                raise _RequestError(400, "model: expected a non-empty string")
            unknown = sorted(
                set(payload) - {"model", "objective", "budget", "seed"}
            )
            if unknown:
                raise _RequestError(400, f"unknown field {unknown[0]!r}")
            from ..tuning.objectives import Objective

            try:
                objective = Objective.from_dict(payload.get("objective", {}))
            except ValueError as exc:
                raise _RequestError(400, f"objective: {exc}") from None
            budget = payload.get("budget")
            if budget is not None and (
                isinstance(budget, bool) or not isinstance(budget, int)
            ):
                raise _RequestError(400, "budget: expected an integer")
            seed = payload.get("seed", 0)
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise _RequestError(400, "seed: expected an integer")
            deadline = self._read_deadline()
            try:
                body = tuner.recommend(
                    model_name,
                    objective,
                    budget=budget,
                    seed=seed,
                    deadline=deadline,
                )
            except KeyError:
                raise _RequestError(
                    404,
                    f"unknown model {model_name!r}; "
                    f"available: {engine.list_models()}",
                ) from None
            except ValueError as exc:
                raise _RequestError(400, str(exc)) from None
        except _RequestError as exc:
            engine.metrics.record_error()
            span.record_error(exc).set_attribute("http_status", exc.status)
            self._send_json(exc.status, {"error": str(exc)})
            return
        except (OverloadedError, CircuitOpenError) as exc:
            engine.metrics.record_error()
            retry_after = max(1, int(math.ceil(exc.retry_after)))
            span.record_error(exc).set_attribute("http_status", 503)
            self._send_json(
                503,
                {"error": str(exc), "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
            return
        except DeadlineExceeded as exc:
            engine.metrics.record_error()
            span.record_error(exc).set_attribute("http_status", 504)
            self._send_json(504, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - search/model failures
            engine.metrics.record_error()
            span.record_error(exc).set_attribute("http_status", 500)
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        span.set_attribute("http_status", 200)
        span.set_attribute("evals", body.get("evals", 0))
        self._send_json(200, body)

    # ------------------------------------------------------------------

    def _read_deadline(self) -> Optional[Deadline]:
        """Parse the optional ``X-Deadline-Ms`` budget header."""
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            budget_ms = float(raw)
        except ValueError:
            raise _RequestError(
                400, f"X-Deadline-Ms: expected a number, got {raw!r}"
            ) from None
        if budget_ms <= 0:
            raise _RequestError(400, "X-Deadline-Ms: must be positive")
        return Deadline(budget_ms / 1000.0)

    def _read_json(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _RequestError(411, "Content-Length required")
        length = int(length)
        if length > _MAX_BODY_BYTES:
            raise _RequestError(413, f"body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _RequestError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _RequestError(400, "body must be a JSON object")
        return payload

    def _send_json(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        self._send_raw(
            status, json.dumps(payload).encode(), "application/json",
            headers=headers,
        )

    def _send_raw(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[dict] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id is None:
            request_id = uuid.uuid4().hex[:16]
        self.send_header(REQUEST_ID_HEADER, request_id)
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_ID_HEADER, trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        if self.server.verbose:
            super().log_message(format, *args)


class ServingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to a :class:`ServingEngine`."""

    daemon_threads = True

    def __init__(
        self,
        address,
        engine: ServingEngine,
        verbose: bool = False,
        lifecycle=None,
        observation_log=None,
        shutdown_marker=None,
        tuner=None,
    ):
        super().__init__(address, _Handler)
        self.engine = engine
        self.verbose = verbose
        #: Optional :class:`repro.lifecycle.orchestrator.LifecycleOrchestrator`
        #: (anything with a JSON-serializable ``status()``) behind
        #: ``GET /lifecycle``.
        self.lifecycle = lifecycle
        #: Optional :class:`repro.tuning.engine.RecommendationEngine`
        #: behind ``POST /recommend`` / ``GET /recommendations``.
        self.tuner = tuner
        #: Optional :class:`repro.lifecycle.observations.ObservationLog`
        #: whose journal the drain sequence fsyncs before declaring the
        #: shutdown clean.
        self.observation_log = observation_log
        #: Optional :class:`repro.durability.integrity.CleanShutdownMarker`
        #: written at the end of a successful drain.
        self.shutdown_marker = shutdown_marker
        self._drain_lock = threading.Lock()
        self._drain_report: Optional[dict] = None

    def drain(self) -> dict:
        """Run the graceful-drain sequence once; returns a report.

        Admission stops first (``/readyz`` flips, new ``/predict`` calls
        shed with 503), then in-flight and queued work completes, the
        observation journal is fsynced, the trace exporter flushed, and
        the clean-shutdown marker written.  Safe to call repeatedly —
        later calls return the first report.
        """
        with self._drain_lock:
            if self._drain_report is not None:
                return dict(self._drain_report)
            self.engine.drain()
            report = {"draining": True, "journal_synced": False,
                      "marker_written": False}
            if self.observation_log is not None:
                try:
                    self.observation_log.sync_to_disk()
                    report["journal_synced"] = True
                except Exception:  # noqa: BLE001 - drain must complete
                    pass
            if self.shutdown_marker is not None:
                try:
                    self.shutdown_marker.write({"drained": True})
                    report["marker_written"] = True
                except OSError:
                    pass
            self._drain_report = report
            return dict(report)

    @property
    def url(self) -> str:
        """Base URL of the bound socket (port resolved after bind)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, notebooks)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serving-http", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        super().shutdown()
        self.engine.close()


def create_server(
    engine: Union[ServingEngine, str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    lifecycle=None,
    observation_log=None,
    shutdown_marker=None,
    tuner=None,
) -> ServingHTTPServer:
    """Build a server around an engine (or a model-directory path).

    ``engine`` may be any object implementing the serving-engine duck
    type — the in-process :class:`ServingEngine` or a started
    :class:`~repro.cluster.engine.ClusterEngine` alike; a string or path
    is shorthand for an in-process engine over that directory.
    """
    if isinstance(engine, (str, Path)):
        engine = ServingEngine(engine)
    return ServingHTTPServer(
        (host, port),
        engine,
        verbose=verbose,
        lifecycle=lifecycle,
        observation_log=observation_log,
        shutdown_marker=shutdown_marker,
        tuner=tuner,
    )


# ----------------------------------------------------------------------
# repro-serve CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve persisted workload models over HTTP: POST /predict, "
            "GET /models, GET /healthz, GET /metrics."
        ),
    )
    parser.add_argument(
        "--models-dir",
        required=True,
        help="directory of <name>.json artifacts written by save_model()",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8700, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-batch-size", type=int, default=32,
        help="micro-batch flush size",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batch straggler wait",
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="prediction-cache entries (0 disables)",
    )
    parser.add_argument(
        "--no-batching", action="store_true",
        help="disable cross-request micro-batching",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="serve from this many supervised inference worker processes "
             "instead of in-process (0 = in-process engine); see "
             "docs/cluster.md",
    )
    parser.add_argument(
        "--replication", type=int, default=2,
        help="cluster mode: replica-set size per model (primary + "
             "failover siblings)",
    )
    parser.add_argument(
        "--restart-budget", type=int, default=5,
        help="cluster mode: worker restarts allowed per minute before a "
             "worker is marked failed",
    )
    parser.add_argument(
        "--worker-call-timeout", type=float, default=10.0,
        help="cluster mode: per-call budget on a worker round trip",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=256,
        help="soft admission bound: above this, answer from the fallback "
             "surrogate (0 disables)",
    )
    parser.add_argument(
        "--shed-inflight", type=int, default=512,
        help="hard admission bound: above this, shed with 503 + "
             "Retry-After (0 disables)",
    )
    parser.add_argument(
        "--breaker-reset-timeout", type=float, default=5.0,
        help="seconds an open circuit breaker waits before probing",
    )
    parser.add_argument(
        "--no-fallback", action="store_true",
        help="disable the degraded-mode linear surrogate",
    )
    parser.add_argument(
        "--trace-sample-rate", type=float, default=1.0,
        help="fraction of traces recorded (deterministic head sampling)",
    )
    parser.add_argument(
        "--slow-trace-ms", type=float, default=500.0,
        help="spans at least this slow are always recorded and flagged "
             "(0 disables the override)",
    )
    parser.add_argument(
        "--trace-export",
        help="append finished spans to this JSONL file (repro-trace input)",
    )
    parser.add_argument(
        "--no-tracing", action="store_true",
        help="disable request tracing entirely",
    )
    parser.add_argument(
        "--store-root",
        help="VersionedModelStore root; enables artifact integrity "
             "verification with quarantine + auto-rollback and startup "
             "manifest repair",
    )
    parser.add_argument(
        "--journal-dir",
        help="write-ahead observation journal directory (replayed with "
             "torn-tail recovery at startup, fsynced on drain)",
    )
    parser.add_argument(
        "--no-startup-recovery", action="store_true",
        help="skip the startup recovery pass (manifest repair, artifact "
             "verification, journal tail repair)",
    )
    parser.add_argument(
        "--tune-budget", type=int, default=256,
        help="default model evaluations per /recommend search",
    )
    parser.add_argument(
        "--tune-cache-size", type=int, default=64,
        help="recommendation-cache entries (0 disables caching)",
    )
    parser.add_argument(
        "--no-tuning", action="store_true",
        help="disable the autotuning endpoints entirely",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every request"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; serves until interrupted (SIGTERM drains first)."""
    args = build_parser().parse_args(argv)
    # Durability wiring is imported lazily: the serving package must stay
    # importable without dragging the lifecycle layer in at module level.
    from ..durability.integrity import CleanShutdownMarker, IntegrityGuard
    from ..durability.recovery import RecoveryManager

    store = None
    guard = None
    if args.store_root:
        from ..lifecycle.store import VersionedModelStore

        store = VersionedModelStore(args.store_root)
        guard = IntegrityGuard(
            rollback=lambda name: (
                store.redeploy_verified(name, args.models_dir) is not None
            ),
        )
    try:
        if args.workers > 0:
            from ..cluster import ClusterEngine

            engine = ClusterEngine(
                args.models_dir,
                workers=args.workers,
                replication=args.replication,
                call_timeout=args.worker_call_timeout,
                fallback=not args.no_fallback,
                max_inflight=args.max_inflight or None,
                shed_inflight=args.shed_inflight or None,
                tracing=not args.no_tracing,
                trace_sample_rate=args.trace_sample_rate,
                slow_trace_ms=args.slow_trace_ms or None,
                trace_export=args.trace_export,
                supervisor_options={"restart_budget": args.restart_budget},
            ).start()
        else:
            engine = ServingEngine(
                args.models_dir,
                batching=not args.no_batching,
                max_batch_size=args.max_batch_size,
                max_wait_ms=args.max_wait_ms,
                cache_size=args.cache_size,
                fallback=not args.no_fallback,
                max_inflight=args.max_inflight or None,
                shed_inflight=args.shed_inflight or None,
                breaker_reset_timeout=args.breaker_reset_timeout,
                tracing=not args.no_tracing,
                trace_sample_rate=args.trace_sample_rate,
                slow_trace_ms=args.slow_trace_ms or None,
                trace_export=args.trace_export,
                integrity=guard,
            )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if guard is not None and guard.tracer is None:
        guard.tracer = engine.tracer
    marker = CleanShutdownMarker(Path(args.models_dir))
    if not args.no_startup_recovery and (store is not None or args.journal_dir):
        report = RecoveryManager(
            store=store,
            registry_dir=args.models_dir,
            journal_dir=args.journal_dir,
            marker=marker,
            metrics=engine.metrics,
            tracer=engine.tracer,
        ).run()
        if report.repaired_anything:
            print(f"Startup recovery repaired state: {report.to_dict()}")
        elif not report.clean_shutdown:
            print("Startup recovery: no clean-shutdown marker, state verified")
    observation_log = None
    if args.journal_dir:
        from ..lifecycle.observations import ObservationLog, serving_tap

        # The recovery pass above already counted the replay into the
        # metrics; this replay only rebuilds the in-memory buffer.
        observation_log = ObservationLog.replay_journal(
            args.journal_dir, resume=True
        )
        observation_log.metrics = engine.metrics
        engine.observer = serving_tap(observation_log)
    tuner = None
    if not args.no_tuning:
        from ..tuning.engine import RecommendationEngine

        tuner = RecommendationEngine(
            engine,
            default_budget=args.tune_budget,
            cache_size=args.tune_cache_size,
        )
    server = ServingHTTPServer(
        (args.host, args.port),
        engine,
        verbose=args.verbose,
        observation_log=observation_log,
        shutdown_marker=marker,
        tuner=tuner,
    )

    def _on_sigterm(signum, frame):  # noqa: ARG001 - signal API
        # Drain on a worker thread: shutdown() must not run on the
        # thread executing serve_forever (it would deadlock).
        threading.Thread(
            target=lambda: (server.drain(), server.shutdown()),
            name="repro-serving-drain",
            daemon=True,
        ).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    models = engine.list_models()
    print(f"Serving {len(models)} model(s) {models} at {server.url}")
    if args.workers > 0:
        print(
            f"Cluster mode: {args.workers} supervised worker process(es), "
            f"replication {args.replication}"
        )
    print(
        "POST /predict | POST /recommend | GET /models | GET /healthz "
        "| GET /readyz | GET /metrics | GET /traces | POST /admin/drain"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nShutting down.")
    finally:
        server.drain()
        server.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
