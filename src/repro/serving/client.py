"""Thin urllib client for the serving HTTP API.

Used by the tests, the serving benchmark, and scripts that want to query a
running ``repro-serve`` without hand-rolling HTTP.  Single dependency-free
file; the only non-stdlib import is NumPy for the array convenience.

Reliability: the client can carry a per-request deadline (sent as the
``X-Deadline-Ms`` header, honoured server-side all the way into the
micro-batcher wait) and an optional
:class:`~repro.reliability.policies.RetryPolicy` that retries transient
failures — connection errors and 503s, honouring the server's
``Retry-After`` hint — without ever outliving the deadline.  ``/predict``
is a pure function of its body, so retrying the POST is safe — but only
when the failure struck *before* any response bytes arrived.  A
connection that dies mid-response (the server was killed while writing)
raises :class:`TruncatedResponseError` instead, which is never retried:
the server demonstrably accepted and processed the request, so replaying
it would double-count observations and metrics on whatever replaces it.
"""

from __future__ import annotations

import json
import uuid
from typing import Dict, List, Optional, Sequence, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

import numpy as np

from ..observability.trace import NOOP_SPAN, REQUEST_ID_HEADER, Tracer
from ..reliability.policies import Deadline, RetryPolicy
from ..workload.service import INPUT_NAMES, OUTPUT_NAMES

__all__ = ["ServingError", "TruncatedResponseError", "ServingClient"]

#: HTTP statuses worth retrying: the server said "try again later".
_RETRYABLE_STATUSES = frozenset({503})


class ServingError(Exception):
    """An HTTP-level failure reported by the server."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        request_id: Optional[str] = None,
    ):
        text = f"HTTP {status}: {message}"
        if request_id:
            text += f" (request {request_id})"
        super().__init__(text)
        self.status = status
        self.message = message
        #: Server-suggested backoff (seconds) from the Retry-After header.
        self.retry_after = retry_after
        #: The ``X-Request-Id`` of the failed request — quote it when
        #: filing a report; the server logged the same id.
        self.request_id = request_id


class TruncatedResponseError(OSError):
    """The connection died *after* response bytes had been received.

    Distinct from a plain connection error on purpose: the server got the
    request, executed it, and started answering — only the tail of the
    response was lost.  Retrying would re-execute a request the server
    already served, so the retry policy must not treat this as transient.
    """

    def __init__(self, message: str, request_id: Optional[str] = None):
        if request_id:
            message += f" (request {request_id})"
        super().__init__(message)
        self.request_id = request_id


def _is_retryable(exc: BaseException) -> bool:
    if isinstance(exc, ServingError):
        return exc.status in _RETRYABLE_STATUSES
    if isinstance(exc, TruncatedResponseError):
        # Response bytes arrived: the server side effects already
        # happened, so this failure is not safely replayable.
        return False
    return isinstance(exc, (URLError, ConnectionError, TimeoutError))


class ServingClient:
    """Talk to one ``repro-serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8700"`` (no trailing slash needed).
    timeout:
        Socket timeout (seconds) for every call; also the default
        per-request deadline budget.
    retry:
        Optional :class:`~repro.reliability.policies.RetryPolicy` applied
        to every request (503s and connection errors are retried; 4xx
        never are).
    send_deadline:
        Attach ``X-Deadline-Ms`` to ``/predict`` calls so the server can
        abandon work the client has already given up on.
    tracer:
        Optional :class:`~repro.observability.trace.Tracer`.  Each
        logical request then opens a ``client.request`` span, each retry
        attempt a ``client.attempt`` child, and the trace context rides
        the ``X-Trace-Id`` / ``X-Parent-Span-Id`` headers so the server's
        spans join the same trace.  Every request also carries a fresh
        ``X-Request-Id`` (tracer or not), echoed by the server and
        attached to any raised :class:`ServingError`.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        send_deadline: bool = True,
        tracer: Optional[Tracer] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retry = retry
        self.send_deadline = bool(send_deadline)
        self.tracer = tracer

    # ------------------------------------------------------------------

    def predict(
        self,
        model: str,
        config: Union[Dict[str, float], Sequence[float]],
        deadline_s: Optional[float] = None,
    ) -> Dict[str, float]:
        """Predict one configuration; returns ``{indicator: value}``."""
        body = {"model": model, "config": self._as_config(config)}
        return self._post_json("/predict", body, deadline_s)["prediction"]

    def predict_detailed(
        self,
        model: str,
        config: Union[Dict[str, float], Sequence[float]],
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Like :meth:`predict` but returns the full response body —
        including the ``degraded`` flag and answer ``source``."""
        body = {"model": model, "config": self._as_config(config)}
        return self._post_json("/predict", body, deadline_s)

    def predict_many(
        self,
        model: str,
        configs: Sequence[Union[Dict[str, float], Sequence[float]]],
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Predict many configurations; returns an ``(n, 5)`` array."""
        body = {
            "model": model,
            "configs": [self._as_config(c) for c in configs],
        }
        payload = self._post_json("/predict", body, deadline_s)
        return np.array(
            [[p[name] for name in OUTPUT_NAMES] for p in payload["predictions"]],
            dtype=float,
        )

    def recommend(
        self,
        model: str,
        objective: Optional[dict] = None,
        budget: Optional[int] = None,
        seed: int = 0,
        deadline_s: Optional[float] = None,
    ) -> dict:
        """Ask ``POST /recommend`` for the best configuration.

        ``objective`` is the :class:`~repro.tuning.objectives.Objective`
        wire form (``None`` means maximize ``effective_tps``).  Returns
        the full recommendation body: ``config``, ``predicted``,
        ``score``, ``feasible``, ``rationale``, and search accounting.
        Like ``/predict``, the call is a pure function of its body, so
        the retry policy applies safely.
        """
        body: dict = {"model": model, "seed": int(seed)}
        if objective is not None:
            body["objective"] = objective
        if budget is not None:
            body["budget"] = int(budget)
        return self._post_json("/recommend", body, deadline_s)

    def recommendations(self, limit: int = 20) -> dict:
        """Recent recommendations, standing objectives, cache stats."""
        return self._get_json(f"/recommendations?limit={int(limit)}")

    def models(self) -> List[str]:
        """Model names the server can answer for."""
        return self._get_json("/models")["models"]

    def healthz(self) -> bool:
        """Whether the server can still answer (healthy *or* degraded)."""
        try:
            return self._get_json("/healthz").get("status") in (
                "ok", "healthy", "degraded",
            )
        except (ServingError, URLError, OSError):
            return False

    def health(self) -> dict:
        """The full ``/healthz`` payload (status, breakers, fallbacks)."""
        try:
            return self._get_json("/healthz")
        except ServingError as exc:
            try:
                return json.loads(exc.message)
            except (json.JSONDecodeError, TypeError):
                raise exc from None

    def metrics(self) -> dict:
        """The metrics snapshot as a dict."""
        return self._get_json("/metrics?format=json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition."""
        return self._request("GET", "/metrics").decode()

    # ------------------------------------------------------------------

    @staticmethod
    def _as_config(
        config: Union[Dict[str, float], Sequence[float]]
    ) -> Dict[str, float]:
        if isinstance(config, dict):
            # Pass through untouched: field validation is the server's job,
            # and coercing here would mask its 400 messages.
            return dict(config)
        values = list(config)
        if len(values) != len(INPUT_NAMES):
            raise ValueError(
                f"expected {len(INPUT_NAMES)} values in {INPUT_NAMES} "
                f"order, got {len(values)}"
            )
        return {name: float(v) for name, v in zip(INPUT_NAMES, values)}

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request("GET", path))

    def _post_json(
        self, path: str, body: dict, deadline_s: Optional[float] = None
    ) -> dict:
        data = json.dumps(body).encode()
        deadline = None
        if self.send_deadline:
            budget = self.timeout if deadline_s is None else float(deadline_s)
            deadline = Deadline(budget)
        return json.loads(
            self._request(
                "POST", path, data=data,
                headers={"Content-Type": "application/json"},
                deadline=deadline,
            )
        )

    def _request(
        self,
        method: str,
        path: str,
        data: Optional[bytes] = None,
        headers: Optional[dict] = None,
        deadline: Optional[Deadline] = None,
    ) -> bytes:
        # One id per *logical* request: every retry attempt resends it, so
        # the server logs N entries joinable to this one client call.
        request_id = uuid.uuid4().hex[:16]

        def attempt() -> bytes:
            request_headers = dict(headers or {})
            request_headers[REQUEST_ID_HEADER] = request_id
            if self.tracer is not None:
                # The active span here is the per-attempt span (when a
                # retry policy opened one) or the outer request span.
                active = self.tracer.current_span()
                if active is None or not active.trace_id:
                    active = outer
                self.tracer.inject_context(active, request_headers)
            timeout = self.timeout
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    raise ServingError(
                        504, "client deadline exhausted",
                        request_id=request_id,
                    )
                request_headers["X-Deadline-Ms"] = str(
                    max(1, int(remaining * 1000))
                )
                timeout = deadline.clamp(timeout)
            request = Request(
                self.base_url + path,
                data=data,
                headers=request_headers,
                method=method,
            )
            response_started = False
            try:
                with urlopen(request, timeout=timeout) as response:
                    # urlopen returning means the status line and headers
                    # were received — from here on, a dead connection is a
                    # truncated response, not a failed request.
                    response_started = True
                    return response.read()
            except HTTPError as exc:
                raw = exc.read()
                try:
                    message = json.loads(raw).get("error", raw.decode())
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = raw.decode(errors="replace")
                retry_after = None
                raw_hint = exc.headers.get("Retry-After")
                if raw_hint is not None:
                    try:
                        retry_after = float(raw_hint)
                    except ValueError:
                        retry_after = None
                raise ServingError(
                    exc.code, message, retry_after, request_id=request_id
                ) from None
            except Exception as exc:
                if response_started:
                    raise TruncatedResponseError(
                        f"connection lost mid-response on {method} {path}: "
                        f"{type(exc).__name__}: {exc}",
                        request_id=request_id,
                    ) from exc
                raise

        outer = (
            self.tracer.start_span(
                "client.request",
                attributes={
                    "method": method,
                    "path": path,
                    "request_id": request_id,
                },
            )
            if self.tracer is not None
            else NOOP_SPAN
        )
        with outer:
            if self.retry is None:
                return attempt()
            return self.retry.call(
                attempt,
                deadline=deadline,
                retry_on=_is_retryable,
                tracer=self.tracer,
                span_name="client.attempt",
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingClient({self.base_url!r})"
