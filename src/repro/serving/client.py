"""Thin urllib client for the serving HTTP API.

Used by the tests, the serving benchmark, and scripts that want to query a
running ``repro-serve`` without hand-rolling HTTP.  Single dependency-free
file; the only non-stdlib import is NumPy for the array convenience.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

import numpy as np

from ..workload.service import INPUT_NAMES, OUTPUT_NAMES

__all__ = ["ServingError", "ServingClient"]


class ServingError(Exception):
    """An HTTP-level failure reported by the server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServingClient:
    """Talk to one ``repro-serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8700"`` (no trailing slash needed).
    timeout:
        Socket timeout (seconds) for every call.
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------

    def predict(
        self,
        model: str,
        config: Union[Dict[str, float], Sequence[float]],
    ) -> Dict[str, float]:
        """Predict one configuration; returns ``{indicator: value}``."""
        body = {"model": model, "config": self._as_config(config)}
        return self._post_json("/predict", body)["prediction"]

    def predict_many(
        self,
        model: str,
        configs: Sequence[Union[Dict[str, float], Sequence[float]]],
    ) -> np.ndarray:
        """Predict many configurations; returns an ``(n, 5)`` array."""
        body = {
            "model": model,
            "configs": [self._as_config(c) for c in configs],
        }
        payload = self._post_json("/predict", body)
        return np.array(
            [[p[name] for name in OUTPUT_NAMES] for p in payload["predictions"]],
            dtype=float,
        )

    def models(self) -> List[str]:
        """Model names the server can answer for."""
        return self._get_json("/models")["models"]

    def healthz(self) -> bool:
        """Whether the server answers its liveness probe."""
        try:
            return self._get_json("/healthz").get("status") == "ok"
        except (ServingError, URLError, OSError):
            return False

    def metrics(self) -> dict:
        """The metrics snapshot as a dict."""
        return self._get_json("/metrics?format=json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition."""
        return self._request("GET", "/metrics").decode()

    # ------------------------------------------------------------------

    @staticmethod
    def _as_config(
        config: Union[Dict[str, float], Sequence[float]]
    ) -> Dict[str, float]:
        if isinstance(config, dict):
            # Pass through untouched: field validation is the server's job,
            # and coercing here would mask its 400 messages.
            return dict(config)
        values = list(config)
        if len(values) != len(INPUT_NAMES):
            raise ValueError(
                f"expected {len(INPUT_NAMES)} values in {INPUT_NAMES} "
                f"order, got {len(values)}"
            )
        return {name: float(v) for name, v in zip(INPUT_NAMES, values)}

    def _get_json(self, path: str) -> dict:
        return json.loads(self._request("GET", path))

    def _post_json(self, path: str, body: dict) -> dict:
        data = json.dumps(body).encode()
        return json.loads(
            self._request(
                "POST", path, data=data,
                headers={"Content-Type": "application/json"},
            )
        )

    def _request(
        self,
        method: str,
        path: str,
        data: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> bytes:
        request = Request(
            self.base_url + path,
            data=data,
            headers=headers or {},
            method=method,
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode(errors="replace")
            raise ServingError(exc.code, message) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingClient({self.base_url!r})"
