"""Micro-batching: coalesce concurrent single queries into one forward pass.

A trained MLP answers a batch of 32 configurations in barely more time
than a single one — the forward pass is a handful of matrix products whose
cost is dominated by per-call overhead at batch size 1.  The classic
inference-stack response is micro-batching: queries from many clients land
in a queue, a worker thread drains up to ``max_batch_size`` of them (waiting
at most ``max_wait_ms`` for stragglers), stacks them into one NumPy batch,
and runs a single vectorized ``predict``.  Built on ``queue.SimpleQueue``
and condition-variable futures — stdlib only, no asyncio.

The hot path is tuned: the queue is the C-implemented ``SimpleQueue``, all
futures of a batch are resolved under one shared condition variable with a
single ``notify_all`` per *batch* (a per-future ``threading.Event`` costs
~4 µs just to allocate, which at single-digit-µs forward passes would eat
the batching win), and result rows are handed out as views into the batch
output array rather than per-row copies.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from ..reliability.faults import SITE_BATCHER_FLUSH

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultPlan

__all__ = ["PredictionFuture", "MicroBatcher", "BatcherClosedError"]

_SHUTDOWN = object()


class BatcherClosedError(RuntimeError):
    """The batcher was closed before this query could run."""


class PredictionFuture:
    """A one-shot future resolved by the batcher's worker thread.

    All futures of one batcher share its condition variable; the worker
    resolves a whole batch and notifies once.  ``_done`` is written under
    the condition's lock and read lock-free on the fast path (safe under
    the GIL: it only ever transitions False -> True).

    The future also carries the micro-batching timeline —
    ``submitted_at`` (stamped at :meth:`MicroBatcher.submit`),
    ``flush_started_at`` / ``flush_ended_at`` (stamped by the worker
    around the vectorized predict), and ``batch_size`` — all
    ``time.perf_counter`` values, so the tracing layer can reconstruct
    the queue-wait vs flush-execute split that batching otherwise hides.
    """

    __slots__ = (
        "vector",
        "submitted_at",
        "flush_started_at",
        "flush_ended_at",
        "batch_size",
        "_value",
        "_error",
        "_done",
        "_cond",
    )

    def __init__(self, vector: np.ndarray, cond: threading.Condition):
        self.vector = vector
        self.submitted_at = time.perf_counter()
        self.flush_started_at: Optional[float] = None
        self.flush_ended_at: Optional[float] = None
        self.batch_size: Optional[int] = None
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._done = False
        self._cond = cond

    def done(self) -> bool:
        """Whether a result (or error) has been delivered."""
        return self._done

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the batch containing this query has run."""
        if not self._done:
            with self._cond:
                if not self._cond.wait_for(lambda: self._done, timeout):
                    raise TimeoutError("prediction did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value


class MicroBatcher:
    """Batch single feature vectors through one vectorized ``predict_fn``.

    Parameters
    ----------
    predict_fn:
        Vectorized model call: ``(n, d) array -> (n, m) array``.  Called
        only from the worker thread, so a plain
        :meth:`NeuralWorkloadModel.predict <repro.models.neural.NeuralWorkloadModel.predict>`
        bound method is safe.
    max_batch_size:
        Flush a batch as soon as it holds this many queries.
    max_wait_ms:
        After the first query of a batch arrives, wait at most this long
        for more before flushing — bounds the latency a lone straggler
        pays for batching.
    on_batch:
        Optional callback ``(batch_size) -> None`` invoked after each
        flush (metrics hook).
    faults:
        Optional :class:`~repro.reliability.faults.FaultPlan` consulted at
        the ``batcher.flush`` site before each vectorized predict —
        latency spikes and injected errors for chaos tests.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        on_batch: Optional[Callable[[int], None]] = None,
        faults: Optional["FaultPlan"] = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.predict_fn = predict_fn
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.on_batch = on_batch
        self.faults = faults
        self.batches_run = 0
        self.items_run = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._cond = threading.Condition()
        #: Makes check-closed + enqueue atomic against close(): the
        #: shutdown sentinel is guaranteed to be the last item admitted,
        #: so no raced submit can strand a future behind it.
        self._admission = threading.Lock()
        self._closed = False
        self._drain = False
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------

    def submit(self, vector: Sequence[float]) -> PredictionFuture:
        """Enqueue one query; returns immediately with its future."""
        if self._closed:
            # Lock-free fast path: once closed is visible, stay closed.
            raise BatcherClosedError("submit() on a closed MicroBatcher")
        future = PredictionFuture(
            np.asarray(vector, dtype=float).ravel(), self._cond
        )
        with self._admission:
            if self._closed:
                raise BatcherClosedError("submit() on a closed MicroBatcher")
            self._queue.put(future)
        return future

    def predict(
        self, vector: Sequence[float], timeout: Optional[float] = None
    ) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(vector).result(timeout)

    @property
    def mean_batch_size(self) -> float:
        """Average occupancy of the batches flushed so far."""
        return self.items_run / self.batches_run if self.batches_run else 0.0

    def close(self, timeout: float = 5.0, drain: bool = False) -> None:
        """Stop the worker; queued queries are failed or drained.

        With ``drain=False`` (the default, the fail-fast path) everything
        still waiting in the queue gets a :class:`BatcherClosedError`
        instead of blocking its caller until a ``result(timeout)`` lapses
        — a dead batcher must never strand its clients.  The in-flight
        batch (already handed to ``predict_fn``) completes normally
        either way.

        With ``drain=True`` (graceful shutdown) every *already-queued*
        query is completed through ``predict_fn`` before the worker
        exits; only queries stranded by a worker wedged past ``timeout``
        are failed.  New ``submit()`` calls raise immediately in both
        modes: the admission window closes atomically, so the shutdown
        sentinel is always the last item in the queue and no concurrent
        ``submit`` can strand a future behind it.
        """
        with self._admission:
            if self._closed:
                return
            self._drain = bool(drain)
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout)
        # Backstop: if the worker is wedged in predict_fn (or already
        # gone), drain from this thread so no caller stays blocked.
        self._fail_pending()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            head = self._queue.get()
            if head is _SHUTDOWN:
                self._finish()
                return
            batch = [head]
            stop = self._gather(batch)
            self._flush(batch)
            if stop:
                self._finish()
                return

    def _finish(self) -> None:
        """Worker shutdown: drain or fail whatever is still queued."""
        if self._drain:
            self._drain_remaining()
        else:
            self._fail_pending()

    def _drain_remaining(self) -> None:
        """Flush everything still queued in ``max_batch_size`` batches."""
        while True:
            batch: List[PredictionFuture] = []
            while len(batch) < self.max_batch_size:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    continue
                batch.append(item)
            if not batch:
                return
            self._flush(batch)

    def _fail_pending(self) -> None:
        """Fail everything still queued with :class:`BatcherClosedError`."""
        error = BatcherClosedError(
            "MicroBatcher closed before this query could run"
        )
        failed: List[PredictionFuture] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            failed.append(item)
        if failed:
            with self._cond:
                for future in failed:
                    future._error = error
                    future._done = True
                self._cond.notify_all()

    def _gather(self, batch: List[PredictionFuture]) -> bool:
        """Fill ``batch`` until full, the wait budget lapses, or shutdown."""
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Budget spent — but never leave already-queued work to
                # wait a full extra cycle; drain whatever fits for free.
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    return False
            else:
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    return False
            if item is _SHUTDOWN:
                return True
            batch.append(item)
        return False

    def _flush(self, batch: List[PredictionFuture]) -> None:
        flush_started = time.perf_counter()
        try:
            if self.faults is not None:
                self.faults.fire(SITE_BATCHER_FLUSH)
            outputs = self.predict_fn(np.vstack([f.vector for f in batch]))
            outputs = np.asarray(outputs, dtype=float)
            if outputs.shape[0] != len(batch):
                raise ValueError(
                    f"predict_fn returned {outputs.shape[0]} rows for a "
                    f"batch of {len(batch)}"
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            flush_ended = time.perf_counter()
            with self._cond:
                for future in batch:
                    future.flush_started_at = flush_started
                    future.flush_ended_at = flush_ended
                    future.batch_size = len(batch)
                    future._error = exc
                    future._done = True
                self._cond.notify_all()
            return
        flush_ended = time.perf_counter()
        self.batches_run += 1
        self.items_run += len(batch)
        with self._cond:
            # Rows are views into the batch output; nothing mutates it.
            for future, row in zip(batch, outputs):
                future.flush_started_at = flush_started
                future.flush_ended_at = flush_ended
                future.batch_size = len(batch)
                future._value = row
                future._done = True
            self._cond.notify_all()
        if self.on_batch is not None:
            self.on_batch(len(batch))
