"""Bounded LRU cache for repeated configuration queries.

Tuning sweeps (e.g. ``examples/tuning_case_study.py``) and capacity
planners hammer the same configurations over and over; the model is
deterministic, so an exact repeat never needs the network.  Keys quantize
the configuration vector (round to ``decimals``) so float noise from
different clients serializing the same config still hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = ["PredictionCache"]


class PredictionCache:
    """Thread-safe LRU of ``(model name, quantized config) -> prediction``.

    Parameters
    ----------
    max_entries:
        Bound on resident entries; the least recently *used* entry is
        evicted first.  ``0`` disables caching (every lookup misses).
    decimals:
        Configuration coordinates are rounded to this many decimals when
        forming keys.
    """

    def __init__(self, max_entries: int = 1024, decimals: int = 6):
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = int(max_entries)
        self.decimals = int(decimals)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        # Per-model key index: invalidating one model after a hot reload
        # must not scan every resident entry of every other model.
        self._by_model: Dict[str, Set[Tuple]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def key(self, model_name: str, vector: Sequence[float]) -> Tuple:
        """The canonical cache key for one (model, configuration) pair."""
        quantized = tuple(
            round(float(v), self.decimals) for v in np.asarray(vector).ravel()
        )
        return (model_name, quantized)

    def get(self, key: Tuple) -> Optional[np.ndarray]:
        """The cached prediction, or ``None`` on a miss (counts either way)."""
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
        return value.copy()

    def put(self, key: Tuple, value: np.ndarray) -> None:
        """Insert (or refresh) a prediction, evicting LRU entries to fit."""
        if self.max_entries == 0:
            return
        value = np.array(value, dtype=float)
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            self._by_model.setdefault(key[0], set()).add(key)
            while len(self._data) > self.max_entries:
                evicted, _ = self._data.popitem(last=False)
                self.evictions += 1
                self._unindex(evicted)

    def _unindex(self, key: Tuple) -> None:
        """Drop ``key`` from the per-model index (caller holds the lock)."""
        keys = self._by_model.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_model[key[0]]

    def invalidate_model(self, model_name: str) -> int:
        """Drop every entry of one model (call after a hot reload).

        O(entries of that model) via the per-model key index — other
        models' entries are never touched or scanned.
        """
        with self._lock:
            stale = self._by_model.pop(model_name, ())
            for k in stale:
                self._data.pop(k, None)
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()
            self._by_model.clear()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._data

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters snapshot for metrics exposition."""
        with self._lock:
            size = len(self._data)
        return {
            "size": size,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionCache(size={len(self)}/{self.max_entries}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
