"""Hot-loading registry of persisted workload models.

Models live on disk as the single-file JSON artifacts written by
:func:`repro.models.persistence.save_model`; the registry maps
``<name>.json`` files in one directory to ready-to-predict
:class:`~repro.models.neural.NeuralWorkloadModel` instances.  Loading is
lazy (a model is materialized on first :meth:`ModelRegistry.get`),
thread-safe, and *hot*: every access re-checks the artifact's mtime and
atomically swaps in a reloaded model when the file changed, so a retrained
artifact can be dropped over the old one while the server keeps running.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from ..models.neural import NeuralWorkloadModel
from ..models.persistence import model_document_from_bytes, model_from_dict
from ..reliability.faults import SITE_REGISTRY_LOAD, SITE_REGISTRY_STAT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..durability.integrity import IntegrityGuard
    from ..observability.trace import Tracer
    from ..reliability.faults import FaultPlan

__all__ = ["RegistryEntry", "ModelRegistry"]


@dataclass(frozen=True)
class RegistryEntry:
    """One loaded model plus the provenance needed to detect staleness."""

    name: str
    model: NeuralWorkloadModel
    path: Path
    format_version: int
    mtime_ns: int

    @property
    def key(self) -> str:
        """Registry key: artifact name qualified by its format version."""
        return f"{self.name}@v{self.format_version}"


class ModelRegistry:
    """Load, list, and evict persisted models from a directory.

    Parameters
    ----------
    directory:
        Directory holding ``<name>.json`` model artifacts.
    check_mtime:
        When ``True`` (default) every :meth:`get` stats the artifact and
        transparently reloads it if the file changed since the cached
        load — the hot-deploy path.  Disable for strictly immutable
        artifact stores to save the ``stat`` call.
    faults:
        Optional :class:`~repro.reliability.faults.FaultPlan` consulted at
        the ``registry.stat`` site (before the artifact ``stat``; file
        faults like ``corrupt_artifact``/``clock_skew`` land here) and the
        ``registry.load`` site (before parsing).
    tracer:
        Optional :class:`~repro.observability.trace.Tracer`; every
        artifact parse (first load and hot reload alike) then shows up as
        a ``registry.load`` span in the requesting trace — the stall a
        request pays when it lands right after a hot deploy.
    integrity:
        Optional :class:`~repro.durability.integrity.IntegrityGuard`.
        When present, every load first verifies the artifact's bytes
        against its recorded sha256, and a corrupt artifact (verification
        failure or parse error) is quarantined and — when the guard
        carries a rollback hook — replaced by the last verified-good
        stored version, with the load retried once against the healed
        file.  Without a guard, corruption raises as before.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        check_mtime: bool = True,
        faults: Optional["FaultPlan"] = None,
        tracer: Optional["Tracer"] = None,
        integrity: Optional["IntegrityGuard"] = None,
    ):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise ValueError(f"model directory {self.directory} does not exist")
        self.check_mtime = bool(check_mtime)
        self.faults = faults
        self.tracer = tracer
        self.integrity = integrity
        self._entries: Dict[str, RegistryEntry] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def path_for(self, name: str) -> Path:
        """The artifact path a model name maps to (no traversal allowed)."""
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise KeyError(f"invalid model name {name!r}")
        return self.directory / f"{name}.json"

    def list_models(self) -> List[str]:
        """Names of every artifact currently on disk, sorted."""
        return sorted(
            p.stem
            for p in self.directory.glob("*.json")
            if not p.name.startswith(".")
        )

    def loaded_models(self) -> List[str]:
        """Names already materialized in memory, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        try:
            return self.path_for(name).is_file()
        except KeyError:
            return False

    def __len__(self) -> int:
        return len(self.list_models())

    # ------------------------------------------------------------------

    def get(self, name: str) -> NeuralWorkloadModel:
        """The ready-to-predict model for ``name`` (lazy hot-load)."""
        return self.get_entry(name).model

    def get_entry(self, name: str) -> RegistryEntry:
        """Like :meth:`get` but returns the full :class:`RegistryEntry`."""
        path = self.path_for(name)
        if self.faults is not None:
            self.faults.fire(SITE_REGISTRY_STAT, path=path)
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and not self.check_mtime:
                return entry
            try:
                mtime_ns = os.stat(path).st_mtime_ns
            except OSError:
                self._entries.pop(name, None)
                raise KeyError(f"unknown model {name!r}") from None
            if entry is not None and entry.mtime_ns == mtime_ns:
                return entry
        # Parse outside the lock: loading a large artifact must not stall
        # concurrent lookups of other (or the old) models.
        try:
            entry = self._load(name, path, mtime_ns)
        except ValueError as exc:
            entry = self._recover_corrupt(name, path, exc)
        with self._lock:
            current = self._entries.get(name)
            # Another thread may have loaded an even newer artifact while
            # we parsed; keep whichever saw the later mtime.
            if current is None or current.mtime_ns <= entry.mtime_ns:
                self._entries[name] = entry
            else:
                entry = current
        return entry

    def reload(self, name: str) -> RegistryEntry:
        """Force a fresh load of ``name``, atomically swapping the entry."""
        with self._lock:
            self._entries.pop(name, None)
        return self.get_entry(name)

    def evict(self, name: str) -> bool:
        """Drop ``name`` from memory; returns whether it was loaded."""
        with self._lock:
            return self._entries.pop(name, None) is not None

    def clear(self) -> None:
        """Drop every materialized model (artifacts stay on disk)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------

    def _recover_corrupt(
        self, name: str, path: Path, exc: ValueError
    ) -> RegistryEntry:
        """Quarantine a corrupt artifact, roll back, and retry the load once.

        Only reached when a load raised :class:`ValueError` (torn JSON,
        digest mismatch, missing fields).  Without an integrity guard —
        or when the guard cannot restore a good artifact — the original
        error propagates; the self-healing path needs both a guard and
        its rollback hook.
        """
        if self.integrity is None:
            raise exc
        restored = self.integrity.handle_corrupt(name, path, exc)
        if not restored:
            raise exc
        try:
            mtime_ns = os.stat(path).st_mtime_ns
        except OSError:
            raise exc from None
        return self._load(name, path, mtime_ns)

    def _load(self, name: str, path: Path, mtime_ns: int) -> RegistryEntry:
        if self.tracer is None:
            return self._load_inner(name, path, mtime_ns)
        with self.tracer.start_span(
            "registry.load", attributes={"model": name}
        ) as span:
            entry = self._load_inner(name, path, mtime_ns)
            span.set_attribute("format_version", entry.format_version)
        return entry

    def _load_inner(
        self, name: str, path: Path, mtime_ns: int
    ) -> RegistryEntry:
        if self.faults is not None:
            self.faults.fire(SITE_REGISTRY_LOAD, path=path)
        # One read serves both the integrity check and the parse — the
        # verify-on-load overhead is the hash and the sidecar read only.
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise ValueError(
                f"cannot read model file {path}: {exc}"
            ) from exc
        if self.integrity is not None:
            self.integrity.verify(path, payload=raw)
        payload = model_document_from_bytes(raw, path)
        try:
            model = model_from_dict(payload)
        except KeyError as exc:
            raise ValueError(
                f"model file {path} is missing required field {exc}"
            ) from exc
        except ValueError as exc:
            raise ValueError(f"cannot load model file {path}: {exc}") from exc
        return RegistryEntry(
            name=name,
            model=model,
            path=path,
            format_version=int(payload["format_version"]),
            mtime_ns=mtime_ns,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelRegistry({str(self.directory)!r}, "
            f"loaded={self.loaded_models()})"
        )
