"""Model serving: turn persisted workload models into a queryable service.

The paper's payoff is that "once constructed, the model can predict the
performance of unmeasured configurations instantly" (Section 5) — this
package is the layer that makes those instant predictions available at
volume.  A :class:`~repro.serving.registry.ModelRegistry` hot-loads the
JSON artifacts written by :func:`repro.models.persistence.save_model`, a
:class:`~repro.serving.batcher.MicroBatcher` coalesces concurrent
single-configuration queries into one vectorized forward pass, a
:class:`~repro.serving.cache.PredictionCache` short-circuits exact-repeat
configurations (the common case in tuning sweeps), and
:class:`~repro.serving.server.ServingHTTPServer` exposes the whole engine
over HTTP (``repro-serve``).  Everything is stdlib + NumPy.
"""

from .batcher import BatcherClosedError, MicroBatcher
from .cache import PredictionCache
from .client import ServingClient, ServingError, TruncatedResponseError
from .engine import PredictionResult, ServingEngine
from .metrics import ServingMetrics
from .registry import ModelRegistry, RegistryEntry
from .server import ServingHTTPServer, create_server

__all__ = [
    "ModelRegistry",
    "RegistryEntry",
    "MicroBatcher",
    "BatcherClosedError",
    "PredictionCache",
    "ServingMetrics",
    "ServingEngine",
    "PredictionResult",
    "ServingHTTPServer",
    "create_server",
    "ServingClient",
    "ServingError",
    "TruncatedResponseError",
]
