"""Hyper-parameter grid search.

The paper tunes "the MLP node count and the termination threshold ...
manually ... for the first trial" (Section 4).  :class:`GridSearch`
mechanizes that step: it scores every parameter combination with k-fold
cross validation and keeps the best, standing in for the engineer's hand
tuning so the whole pipeline is reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .cross_validation import CrossValidationReport, cross_validate

__all__ = ["GridSearchResult", "GridSearch"]


@dataclass
class GridSearchResult:
    """One evaluated grid point."""

    params: Dict[str, object]
    report: CrossValidationReport

    @property
    def score(self) -> float:
        """Overall cross-validation error (lower is better)."""
        return self.report.overall_error


class GridSearch:
    """Exhaustive search over a parameter grid, scored by k-fold CV error.

    Parameters
    ----------
    factory:
        ``factory(**params)`` must return a fresh fit/predict estimator.
    grid:
        Mapping of parameter name to the values to try; the search covers
        the cartesian product.
    k, seed:
        Cross-validation structure used for scoring.

    Examples
    --------
    >>> def factory(hidden, threshold):
    ...     return make_model(hidden=hidden, threshold=threshold)
    >>> search = GridSearch(factory, {"hidden": [8, 16], "threshold": [0.05]})
    """

    def __init__(
        self,
        factory: Callable[..., object],
        grid: Dict[str, Sequence],
        k: int = 5,
        seed: Optional[int] = None,
    ):
        if not grid:
            raise ValueError("grid must contain at least one parameter")
        for name, values in grid.items():
            if len(list(values)) == 0:
                raise ValueError(f"grid parameter {name!r} has no values")
        self.factory = factory
        self.grid = {name: list(values) for name, values in grid.items()}
        self.k = int(k)
        self.seed = seed
        self.results_: List[GridSearchResult] = []

    def combinations(self) -> List[Dict[str, object]]:
        """Every parameter dict in the cartesian product, in grid order."""
        names = list(self.grid)
        return [
            dict(zip(names, values))
            for values in itertools.product(*(self.grid[n] for n in names))
        ]

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        output_names: Optional[Sequence[str]] = None,
    ) -> GridSearchResult:
        """Evaluate the whole grid; returns (and stores) the best result."""
        self.results_ = []
        for params in self.combinations():
            report = cross_validate(
                lambda trial, params=params: self.factory(**params),
                x,
                y,
                k=self.k,
                seed=self.seed,
                output_names=output_names,
            )
            self.results_.append(GridSearchResult(params=params, report=report))
        return self.best_

    @property
    def best_(self) -> GridSearchResult:
        """The lowest-error grid point from the last :meth:`fit`."""
        if not self.results_:
            raise RuntimeError("best_ requested before fit()")
        return min(self.results_, key=lambda r: r.score)

    def summary(self) -> str:
        """Human-readable ranking of all evaluated grid points."""
        if not self.results_:
            raise RuntimeError("summary() requested before fit()")
        lines = ["params -> overall CV error"]
        for result in sorted(self.results_, key=lambda r: r.score):
            lines.append(f"{result.params!r} -> {100 * result.score:.2f} %")
        return "\n".join(lines)
