"""Error metrics, including the paper's harmonic-mean relative error.

Section 3.3: "For error metric, harmonic mean of (absolute error) / (actual
value) is used."  Table 2 reports this per performance indicator, and the
abstract's "95 % average prediction accuracy" is one minus the grand mean of
those errors.  We implement that metric exactly, plus the standard regression
metrics used by the baseline comparisons.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "relative_errors",
    "harmonic_mean",
    "harmonic_mean_relative_error",
    "mean_relative_error",
    "prediction_accuracy",
    "mean_absolute_error",
    "root_mean_squared_error",
    "max_absolute_error",
    "r_squared",
]


def _columns(predicted: np.ndarray, actual: np.ndarray):
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.ndim == 1:
        predicted = predicted.reshape(-1, 1)
    if actual.ndim == 1:
        actual = actual.reshape(-1, 1)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"prediction shape {predicted.shape} != actual shape {actual.shape}"
        )
    if predicted.shape[0] == 0:
        raise ValueError("metrics need at least one sample")
    return predicted, actual


def relative_errors(predicted: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """``|predicted - actual| / |actual|`` element-wise.

    Raises if any actual value is zero — relative error is undefined there,
    and the paper's indicators (response times, throughput) are positive.
    """
    predicted, actual = _columns(predicted, actual)
    if np.any(actual == 0):
        raise ValueError(
            "relative error undefined for zero actual values; filter them or "
            "use mean_absolute_error"
        )
    return np.abs(predicted - actual) / np.abs(actual)


def harmonic_mean(values: np.ndarray) -> float:
    """Harmonic mean ``n / sum(1 / v)`` of strictly positive values.

    A zero is returned if any value is exactly zero (the harmonic mean's
    limit as a value approaches zero), which matters here because a perfect
    prediction yields a zero relative error.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("harmonic mean of an empty set is undefined")
    if np.any(values < 0):
        raise ValueError("harmonic mean requires non-negative values")
    if np.any(values == 0):
        return 0.0
    return float(values.size / np.sum(1.0 / values))


def harmonic_mean_relative_error(
    predicted: np.ndarray, actual: np.ndarray, axis: Optional[int] = None
) -> np.ndarray:
    """The paper's Table 2 metric.

    With ``axis=None`` the harmonic mean is taken over every element; with
    ``axis=0`` a per-indicator (per-column) error vector is returned, which
    is the shape Table 2 reports.
    """
    errors = relative_errors(predicted, actual)
    if axis is None:
        return harmonic_mean(errors)
    if axis != 0:
        raise ValueError(f"axis must be None or 0, got {axis}")
    return np.array([harmonic_mean(errors[:, j]) for j in range(errors.shape[1])])


def mean_relative_error(
    predicted: np.ndarray, actual: np.ndarray, axis: Optional[int] = None
) -> np.ndarray:
    """Arithmetic mean of relative errors (an upper bound on the harmonic)."""
    errors = relative_errors(predicted, actual)
    if axis is None:
        return float(errors.mean())
    return errors.mean(axis=axis)


def prediction_accuracy(predicted: np.ndarray, actual: np.ndarray) -> float:
    """``1 - harmonic-mean relative error`` — the paper's "95 % accuracy"."""
    return 1.0 - float(harmonic_mean_relative_error(predicted, actual))


def mean_absolute_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Mean of ``|predicted - actual|`` over all elements."""
    predicted, actual = _columns(predicted, actual)
    return float(np.mean(np.abs(predicted - actual)))


def root_mean_squared_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root of the mean squared element-wise error."""
    predicted, actual = _columns(predicted, actual)
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def max_absolute_error(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Worst-case absolute element-wise error."""
    predicted, actual = _columns(predicted, actual)
    return float(np.max(np.abs(predicted - actual)))


def r_squared(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Coefficient of determination, averaged over output columns.

    1.0 is perfect; 0.0 matches predicting each column's mean; negative is
    worse than the mean.  Constant actual columns contribute 1.0 when
    predicted exactly and 0.0 otherwise.
    """
    predicted, actual = _columns(predicted, actual)
    scores = []
    for j in range(actual.shape[1]):
        residual = float(np.sum((actual[:, j] - predicted[:, j]) ** 2))
        total = float(np.sum((actual[:, j] - actual[:, j].mean()) ** 2))
        if total == 0:
            scores.append(1.0 if residual == 0 else 0.0)
        else:
            scores.append(1.0 - residual / total)
    return float(np.mean(scores))
