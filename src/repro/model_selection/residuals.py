"""Residual diagnostics for fitted workload models.

The paper's linear predecessors were "validated ... with regression
statistics" [2]; the same discipline applies to the neural model.  Residual
analysis answers the questions a table of average errors hides:

* **bias** — does the model systematically over- or under-predict an
  indicator? (mean residual significantly away from zero)
* **heteroscedasticity** — do errors grow with the predicted magnitude?
  (correlation between |residual| and prediction)
* **outliers** — which specific configurations does the model get wrong?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["IndicatorResiduals", "ResidualReport", "residual_report"]


@dataclass
class IndicatorResiduals:
    """Diagnostics for one output column."""

    name: str
    residuals: np.ndarray
    predictions: np.ndarray
    #: Mean residual over its standard error: |t| >~ 2 flags bias.
    bias_t_statistic: float
    #: Pearson correlation between |residual| and prediction magnitude.
    scale_correlation: float
    #: Indices of residuals beyond ``outlier_sigmas`` standard deviations.
    outliers: List[int]

    @property
    def biased(self) -> bool:
        """Whether the mean residual is significantly non-zero."""
        return abs(self.bias_t_statistic) > 2.0

    @property
    def heteroscedastic(self) -> bool:
        """Whether error scale visibly grows with prediction magnitude."""
        return self.scale_correlation > 0.5


@dataclass
class ResidualReport:
    """Diagnostics for every output column."""

    per_indicator: List[IndicatorResiduals]

    def __getitem__(self, name: str) -> IndicatorResiduals:
        for entry in self.per_indicator:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def flagged(self) -> List[str]:
        """Names of indicators with bias or heteroscedasticity flags."""
        return [
            entry.name
            for entry in self.per_indicator
            if entry.biased or entry.heteroscedastic
        ]

    def to_text(self) -> str:
        """Readable diagnostic table."""
        width = max(len(e.name) for e in self.per_indicator) + 2
        lines = [
            " " * width + f"{'bias t':>8s} {'scale r':>8s} "
            f"{'outliers':>9s}  flags"
        ]
        for entry in self.per_indicator:
            flags = []
            if entry.biased:
                flags.append("BIASED")
            if entry.heteroscedastic:
                flags.append("HETEROSCEDASTIC")
            lines.append(
                f"{entry.name.ljust(width)}"
                f"{entry.bias_t_statistic:8.2f} "
                f"{entry.scale_correlation:8.2f} "
                f"{len(entry.outliers):9d}  {' '.join(flags)}"
            )
        return "\n".join(lines)


def residual_report(
    predicted: np.ndarray,
    actual: np.ndarray,
    output_names: Optional[Sequence[str]] = None,
    outlier_sigmas: float = 3.0,
) -> ResidualReport:
    """Diagnose residuals column by column.

    Parameters
    ----------
    predicted, actual:
        Matched prediction/target matrices (validation-fold values, not
        training-fold — residuals of a fitted training set flatter).
    outlier_sigmas:
        Standard-deviation multiple beyond which a residual is an outlier.
    """
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.ndim == 1:
        predicted = predicted.reshape(-1, 1)
    if actual.ndim == 1:
        actual = actual.reshape(-1, 1)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: {predicted.shape} vs {actual.shape}"
        )
    if predicted.shape[0] < 3:
        raise ValueError("need at least 3 samples for diagnostics")
    if outlier_sigmas <= 0:
        raise ValueError(
            f"outlier_sigmas must be positive, got {outlier_sigmas}"
        )
    names = list(
        output_names or [f"output_{j}" for j in range(predicted.shape[1])]
    )
    if len(names) != predicted.shape[1]:
        raise ValueError(
            f"{len(names)} names for {predicted.shape[1]} columns"
        )

    entries = []
    n = predicted.shape[0]
    for j, name in enumerate(names):
        residuals = predicted[:, j] - actual[:, j]
        std = residuals.std(ddof=1) if n > 1 else 0.0
        standard_error = std / np.sqrt(n) if std > 0 else 0.0
        t_statistic = (
            residuals.mean() / standard_error if standard_error > 0 else 0.0
        )
        magnitude = np.abs(predicted[:, j])
        abs_residuals = np.abs(residuals)
        if abs_residuals.std() > 0 and magnitude.std() > 0:
            correlation = float(
                np.corrcoef(abs_residuals, magnitude)[0, 1]
            )
        else:
            correlation = 0.0
        outliers = (
            [int(i) for i in np.flatnonzero(abs_residuals > outlier_sigmas * std)]
            if std > 0
            else []
        )
        entries.append(
            IndicatorResiduals(
                name=name,
                residuals=residuals.copy(),
                predictions=predicted[:, j].copy(),
                bias_t_statistic=float(t_statistic),
                scale_correlation=correlation,
                outliers=outliers,
            )
        )
    return ResidualReport(per_indicator=entries)
