"""Model validation: the paper's error metric, k-fold CV, and grid search."""

from .bootstrap import BootstrapReport, ErrorInterval, bootstrap_cv_errors
from .cross_validation import (
    CrossValidationReport,
    TrialResult,
    cross_validate,
)
from .learning_curve import LearningCurve, LearningCurvePoint, learning_curve
from .residuals import IndicatorResiduals, ResidualReport, residual_report
from .metrics import (
    harmonic_mean,
    harmonic_mean_relative_error,
    max_absolute_error,
    mean_absolute_error,
    mean_relative_error,
    prediction_accuracy,
    r_squared,
    relative_errors,
    root_mean_squared_error,
)
from .search import GridSearch, GridSearchResult
from .split import Fold, KFold, train_test_split

__all__ = [
    "relative_errors",
    "harmonic_mean",
    "harmonic_mean_relative_error",
    "mean_relative_error",
    "prediction_accuracy",
    "mean_absolute_error",
    "root_mean_squared_error",
    "max_absolute_error",
    "r_squared",
    "Fold",
    "KFold",
    "train_test_split",
    "TrialResult",
    "CrossValidationReport",
    "cross_validate",
    "GridSearch",
    "GridSearchResult",
    "bootstrap_cv_errors",
    "BootstrapReport",
    "ErrorInterval",
    "learning_curve",
    "LearningCurve",
    "LearningCurvePoint",
    "residual_report",
    "ResidualReport",
    "IndicatorResiduals",
]
