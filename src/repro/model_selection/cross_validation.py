"""k-fold cross-validation producing Table-2-shaped reports.

The paper validates its model with 5-fold cross validation and reports, per
trial and per performance indicator, the harmonic-mean relative error of the
validation fold (Table 2), plus column averages and the overall "95 %
accuracy" figure.  :func:`cross_validate` runs that procedure against any
model factory and returns a :class:`CrossValidationReport` that can render
itself as the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .metrics import harmonic_mean_relative_error
from .split import Fold, KFold

__all__ = ["TrialResult", "CrossValidationReport", "cross_validate"]


@dataclass
class TrialResult:
    """Errors and raw predictions for one cross-validation trial."""

    trial: int
    #: Harmonic-mean relative error per output column on the validation fold.
    validation_errors: np.ndarray
    #: Same metric on the training fold (shows the deliberate loose fit).
    training_errors: np.ndarray
    train_indices: np.ndarray
    validation_indices: np.ndarray
    train_actual: np.ndarray
    train_predicted: np.ndarray
    validation_actual: np.ndarray
    validation_predicted: np.ndarray

    @property
    def mean_validation_error(self) -> float:
        """Average of the per-indicator validation errors."""
        return float(self.validation_errors.mean())


@dataclass
class CrossValidationReport:
    """All trials of a cross-validation run."""

    trials: List[TrialResult]
    output_names: List[str] = field(default_factory=list)

    @property
    def k(self) -> int:
        """Number of trials (folds)."""
        return len(self.trials)

    @property
    def error_matrix(self) -> np.ndarray:
        """Shape ``(k, n_outputs)``: validation error per trial and indicator."""
        return np.vstack([t.validation_errors for t in self.trials])

    @property
    def average_errors(self) -> np.ndarray:
        """Per-indicator error averaged over trials — Table 2's bottom row."""
        return self.error_matrix.mean(axis=0)

    @property
    def overall_error(self) -> float:
        """Grand mean of the error matrix."""
        return float(self.error_matrix.mean())

    @property
    def overall_accuracy(self) -> float:
        """``1 - overall_error`` — the paper's headline accuracy."""
        return 1.0 - self.overall_error

    def _names(self) -> List[str]:
        n_outputs = self.error_matrix.shape[1]
        if self.output_names and len(self.output_names) == n_outputs:
            return list(self.output_names)
        return [f"output_{j}" for j in range(n_outputs)]

    def to_table(self) -> str:
        """Render the report in the layout of the paper's Table 2."""
        names = self._names()
        width = max(len(name) for name in names) + 2
        header = "Trial".ljust(8) + "".join(name.rjust(width) for name in names)
        lines = [header]
        for t in self.trials:
            row = f"{t.trial + 1}".ljust(8) + "".join(
                f"{100 * e:.1f} %".rjust(width) for e in t.validation_errors
            )
            lines.append(row)
        avg = "Average".ljust(8) + "".join(
            f"{100 * e:.1f} %".rjust(width) for e in self.average_errors
        )
        lines.append(avg)
        lines.append(
            f"Overall accuracy: {100 * self.overall_accuracy:.1f} %"
        )
        return "\n".join(lines)


#: A model factory receives the trial index and returns a fresh, unfitted
#: estimator exposing ``fit(x, y)`` and ``predict(x)``.
ModelFactory = Callable[[int], object]


def cross_validate(
    model_factory: ModelFactory,
    x: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    shuffle: bool = True,
    seed: Optional[int] = None,
    output_names: Optional[Sequence[str]] = None,
) -> CrossValidationReport:
    """Run k-fold cross validation and collect the paper's error metric.

    Parameters
    ----------
    model_factory:
        Called once per trial with the trial index; must return a fresh
        estimator.  The paper hand-tunes trial 0 and reuses the setting for
        trials 1..k-1 — a factory can express exactly that.
    x, y:
        Full sample collection (configurations and indicators).
    k, shuffle, seed:
        Fold structure; see :class:`~repro.model_selection.split.KFold`.
    output_names:
        Labels for the report columns (e.g. the paper's indicator names).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if y.ndim == 1:
        y = y.reshape(-1, 1)
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} samples but y has {y.shape[0]}")
    folds = KFold(k=k, shuffle=shuffle, seed=seed).split(x.shape[0])
    trials = [
        _run_trial(model_factory, fold, x, y) for fold in folds
    ]
    return CrossValidationReport(
        trials=trials, output_names=list(output_names or [])
    )


def _run_trial(
    model_factory: ModelFactory, fold: Fold, x: np.ndarray, y: np.ndarray
) -> TrialResult:
    model = model_factory(fold.trial)
    x_train = x[fold.train_indices]
    y_train = y[fold.train_indices]
    x_val = x[fold.validation_indices]
    y_val = y[fold.validation_indices]
    model.fit(x_train, y_train)
    train_predicted = np.asarray(model.predict(x_train), dtype=float)
    val_predicted = np.asarray(model.predict(x_val), dtype=float)
    return TrialResult(
        trial=fold.trial,
        validation_errors=harmonic_mean_relative_error(val_predicted, y_val, axis=0),
        training_errors=harmonic_mean_relative_error(
            train_predicted, y_train, axis=0
        ),
        train_indices=fold.train_indices,
        validation_indices=fold.validation_indices,
        train_actual=y_train,
        train_predicted=train_predicted,
        validation_actual=y_val,
        validation_predicted=val_predicted,
    )
