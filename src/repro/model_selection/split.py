"""Data splitting: train/validation holdout and k-fold partitions.

Section 3.3 of the paper: "In k-fold cross validation, a training set is
divided into k sets of equal size. Then the model is trained for k times.
For each trial, one set is excluded ...; k - 1 sets, called training set, are
used to train the model, and the excluded set, termed validation set, is used
to calculate the error metric".  :class:`KFold` produces exactly those
(training, validation) index pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["Fold", "KFold", "train_test_split"]


@dataclass(frozen=True)
class Fold:
    """One cross-validation trial: index arrays into the sample set."""

    trial: int
    train_indices: np.ndarray
    validation_indices: np.ndarray


class KFold:
    """Partition ``n`` samples into ``k`` near-equal folds.

    Parameters
    ----------
    k:
        Number of folds; the paper uses 5.
    shuffle:
        Shuffle sample order before partitioning (recommended when samples
        are collected in configuration-sweep order, as workload samples are).
    seed:
        Seed for the shuffle.
    """

    def __init__(self, k: int = 5, shuffle: bool = True, seed: Optional[int] = None):
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        self.k = int(k)
        self.shuffle = bool(shuffle)
        self.seed = seed

    def split(self, n_samples: int) -> List[Fold]:
        """Return the ``k`` folds for a sample set of size ``n_samples``.

        Every sample lands in exactly one validation set; fold sizes differ
        by at most one.
        """
        if n_samples < self.k:
            raise ValueError(
                f"cannot make {self.k} folds from {n_samples} samples"
            )
        order = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(order)
        chunks = np.array_split(order, self.k)
        folds = []
        for trial, chunk in enumerate(chunks):
            train = np.concatenate(
                [other for j, other in enumerate(chunks) if j != trial]
            )
            folds.append(
                Fold(
                    trial=trial,
                    train_indices=train,
                    validation_indices=chunk.copy(),
                )
            )
        return folds

    def __iter__(self) -> Iterator[Fold]:  # pragma: no cover - convenience
        raise TypeError("call split(n_samples) to iterate over folds")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KFold(k={self.k}, shuffle={self.shuffle}, seed={self.seed})"


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random holdout split; returns ``(x_train, x_test, y_train, y_test)``.

    At least one sample is kept on each side.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} samples but y has {y.shape[0]}")
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    n_test = min(max(int(round(n * test_fraction)), 1), n - 1)
    order = np.arange(n)
    np.random.default_rng(seed).shuffle(order)
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return x[train_idx], x[test_idx], y[train_idx], y[test_idx]
