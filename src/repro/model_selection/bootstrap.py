"""Bootstrap confidence intervals for cross-validation errors.

Table 2 reports point estimates; with ~50 samples those estimates carry
real sampling variance.  This module resamples the per-sample relative
errors of a cross-validation run to attach percentile confidence intervals
to each per-indicator error — turning "dealer purchase error is 2.4 %" into
"2.4 % (95 % CI 1.6-3.4 %)", which is what a reviewer should actually be
shown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .cross_validation import CrossValidationReport
from .metrics import harmonic_mean, relative_errors

__all__ = ["ErrorInterval", "BootstrapReport", "bootstrap_cv_errors"]


@dataclass(frozen=True)
class ErrorInterval:
    """A point estimate with a percentile confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{100 * self.estimate:.1f}% "
            f"({100 * self.confidence:.0f}% CI "
            f"{100 * self.lower:.1f}-{100 * self.upper:.1f}%)"
        )

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


@dataclass
class BootstrapReport:
    """Per-indicator intervals plus the overall-error interval."""

    per_indicator: List[ErrorInterval]
    overall: ErrorInterval
    output_names: List[str]
    n_resamples: int

    def to_text(self) -> str:
        """Readable interval table."""
        lines = [
            f"Bootstrap ({self.n_resamples} resamples), "
            f"harmonic-mean relative error:"
        ]
        width = max(len(n) for n in self.output_names) + 2
        for name, interval in zip(self.output_names, self.per_indicator):
            lines.append(f"  {name.ljust(width)} {interval}")
        lines.append(f"  {'overall'.ljust(width)} {self.overall}")
        return "\n".join(lines)


def bootstrap_cv_errors(
    report: CrossValidationReport,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: Optional[int] = 0,
) -> BootstrapReport:
    """Percentile bootstrap over the pooled validation-fold errors.

    Every sample appears in exactly one validation fold, so pooling the
    folds' per-sample relative errors reconstitutes one error per original
    sample; resampling those with replacement estimates the sampling
    distribution of the harmonic-mean error.
    """
    if n_resamples < 10:
        raise ValueError(f"n_resamples must be >= 10, got {n_resamples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    pooled = np.vstack(
        [
            relative_errors(trial.validation_predicted, trial.validation_actual)
            for trial in report.trials
        ]
    )
    n_samples, n_outputs = pooled.shape
    rng = np.random.default_rng(seed)

    per_column = np.empty((n_resamples, n_outputs))
    overall = np.empty(n_resamples)
    for b in range(n_resamples):
        picks = rng.integers(0, n_samples, size=n_samples)
        resampled = pooled[picks]
        for j in range(n_outputs):
            per_column[b, j] = harmonic_mean(resampled[:, j])
        overall[b] = harmonic_mean(resampled)

    alpha = (1.0 - confidence) / 2.0
    names = report.output_names or [f"output_{j}" for j in range(n_outputs)]

    def interval(samples: np.ndarray, estimate: float) -> ErrorInterval:
        lower, upper = np.percentile(samples, [100 * alpha, 100 * (1 - alpha)])
        return ErrorInterval(
            estimate=float(estimate),
            lower=float(lower),
            upper=float(upper),
            confidence=confidence,
        )

    per_indicator = [
        interval(
            per_column[:, j],
            harmonic_mean(pooled[:, j]),
        )
        for j in range(n_outputs)
    ]
    return BootstrapReport(
        per_indicator=per_indicator,
        overall=interval(overall, harmonic_mean(pooled)),
        output_names=list(names[:n_outputs]),
        n_resamples=n_resamples,
    )
