"""Learning curves: prediction error as a function of sample count.

The paper's motivation is reducing "the amount of heuristic effort" — i.e.
*experiments are the expensive resource*.  The learning curve answers the
budgeting question directly: how many measured configurations does the
model need before its validation error flattens?  Section 3.2 also lists
"the number of training samples" among the factors governing the needed
node count; the curve makes that dependence measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .cross_validation import cross_validate

__all__ = ["LearningCurvePoint", "LearningCurve", "learning_curve"]


@dataclass(frozen=True)
class LearningCurvePoint:
    """Cross-validated error at one training-set size."""

    n_samples: int
    error: float
    per_indicator: np.ndarray


@dataclass
class LearningCurve:
    """The full sweep."""

    points: List[LearningCurvePoint]

    @property
    def sizes(self) -> List[int]:
        """Sample counts, in sweep order."""
        return [p.n_samples for p in self.points]

    @property
    def errors(self) -> List[float]:
        """Overall errors, aligned with :attr:`sizes`."""
        return [p.error for p in self.points]

    def samples_for_error(self, target: float) -> Optional[int]:
        """Smallest swept size whose error is <= ``target`` (None if never)."""
        for point in self.points:
            if point.error <= target:
                return point.n_samples
        return None

    def to_text(self) -> str:
        """Readable curve."""
        lines = ["samples -> CV error"]
        for point in self.points:
            bar = "#" * int(round(200 * point.error))
            lines.append(
                f"  {point.n_samples:4d} -> {100 * point.error:6.2f}%  {bar}"
            )
        return "\n".join(lines)


def learning_curve(
    model_factory: Callable[[int], object],
    x: np.ndarray,
    y: np.ndarray,
    sizes: Sequence[int],
    k: int = 5,
    seed: Optional[int] = 0,
) -> LearningCurve:
    """Cross-validated error at each training-set size.

    For each size ``n`` a random subset of ``n`` samples is drawn (same seed
    family, so the subsets are nested-ish) and k-fold cross validation runs
    on it.  Sizes smaller than ``k`` are rejected.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} samples but y has {y.shape[0]}")
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes:
        raise ValueError("no sizes to sweep")
    if sizes[0] < k:
        raise ValueError(f"smallest size {sizes[0]} is below k={k}")
    if sizes[-1] > x.shape[0]:
        raise ValueError(
            f"largest size {sizes[-1]} exceeds the {x.shape[0]} samples"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(x.shape[0])
    points = []
    for n in sizes:
        subset = order[:n]
        report = cross_validate(
            model_factory, x[subset], y[subset], k=k, seed=seed
        )
        points.append(
            LearningCurvePoint(
                n_samples=n,
                error=report.overall_error,
                per_indicator=report.average_errors.copy(),
            )
        )
    return LearningCurve(points=points)
