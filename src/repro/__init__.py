"""repro: non-linear workload characterization with neural networks.

A full reproduction of Yoo, Lee, Chow & Lee, *Constructing a Non-Linear
Model with Neural Networks for Workload Characterization* (IISWC 2006),
including every substrate the paper depends on:

- :mod:`repro.nn` — a from-scratch NumPy neural-network library (MLPs,
  back-propagation, the paper's loose-fit stopping, RBF and logarithmic
  networks);
- :mod:`repro.workload` — a discrete-event simulation of the paper's 3-tier
  web-service testbed (driver, thread-pooled app server on a contended
  multicore CPU, database tier) plus an analytic surrogate;
- :mod:`repro.preprocessing` / :mod:`repro.model_selection` — the Section 3
  methodology: standardization, the harmonic-mean error metric, k-fold
  cross validation, grid search;
- :mod:`repro.models` — the neural workload model and the linear /
  polynomial / log-linear / RBF / DOE baselines;
- :mod:`repro.analysis` — response surfaces, the parallel-slopes / valley /
  hill taxonomy, sensitivity, configuration recommendation, PCA;
- :mod:`repro.experiments` — one module per paper table/figure;
- :mod:`repro.serving` — a model-serving layer (hot-loading registry,
  micro-batching, prediction cache, HTTP endpoint) for querying persisted
  models at volume.

Quickstart::

    from repro.workload import ThreeTierWorkload, WorkloadConfig
    from repro.models import NeuralWorkloadModel

    metrics = ThreeTierWorkload().run(WorkloadConfig(560, 14, 16, 18))
    print(metrics.indicators)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
