"""Command-line entry point for one-shot workload characterization.

``repro-characterize`` runs the full methodology — collect samples, train
and cross-validate the model, classify surfaces, rank configurations — and
writes the markdown report:

.. code-block:: console

   $ repro-characterize --samples 50 --output report.md
   $ repro-characterize --scenario batch_heavy --backend analytic --fast

(The table/figure reproduction CLI is separate: ``repro-experiments``;
model serving is ``repro-serve``, whose implementation lives in
:mod:`repro.serving.server` and is re-exported here as :func:`serve_main`
for the console-script wiring in ``setup.py``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis.report import characterize
from .models.neural import NeuralWorkloadModel
from .workload.analytic import AnalyticWorkloadModel
from .workload.sampler import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from .workload.scenarios import available_scenarios, scenario
from .workload.service import ThreeTierWorkload

__all__ = [
    "build_parser",
    "main",
    "serve_main",
    "lifecycle_main",
    "trace_main",
    "tune_main",
    "ingest_main",
]


def serve_main(argv: Optional[List[str]] = None) -> int:
    """The ``repro-serve`` entry point (lazy import keeps startup light).

    ``repro-serve --workers N`` scales out to N supervised inference
    worker processes (crash isolation, failover routing); without it the
    in-process engine serves — see :mod:`repro.cluster`."""
    from .serving.server import main as _serve

    return _serve(argv)


def lifecycle_main(argv: Optional[List[str]] = None) -> int:
    """The ``repro-lifecycle`` entry point (lazy import, same pattern)."""
    from .lifecycle.cli import main as _lifecycle

    return _lifecycle(argv)


def trace_main(argv: Optional[List[str]] = None) -> int:
    """The ``repro-trace`` entry point (lazy import, same pattern)."""
    from .observability.cli import main as _trace

    return _trace(argv)


def tune_main(argv: Optional[List[str]] = None) -> int:
    """The ``repro-tune`` entry point (lazy import, same pattern)."""
    from .tuning.cli import main as _tune

    return _tune(argv)


def ingest_main(argv: Optional[List[str]] = None) -> int:
    """The ``repro-ingest`` entry point (lazy import, same pattern)."""
    from .traces.cli import main as _ingest

    return _ingest(argv)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-characterize`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-characterize",
        description=(
            "Characterize the 3-tier workload: collect samples, fit the "
            "neural model, classify surfaces, recommend configurations."
        ),
    )
    parser.add_argument(
        "--samples", type=int, default=50, help="configurations to measure"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=12.0,
        help="simulated seconds per measurement window",
    )
    parser.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default="paper",
        help="transaction mix to characterize",
    )
    parser.add_argument(
        "--backend",
        choices=["simulator", "analytic"],
        default="simulator",
        help="measurement backend (analytic = fast closed-form surrogate)",
    )
    parser.add_argument(
        "--injection",
        type=float,
        nargs=2,
        default=(440.0, 580.0),
        metavar=("LOW", "HIGH"),
        help="injection-rate range to sweep",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="master seed"
    )
    parser.add_argument(
        "--output",
        default="characterization_report.md",
        help="markdown file to write",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="cut training budgets for a quick smoke run",
    )
    return parser


def _space(args: argparse.Namespace) -> ConfigSpace:
    low, high = args.injection
    if not low < high:
        raise SystemExit(f"--injection needs LOW < HIGH, got {low} {high}")
    return ConfigSpace(
        [
            ParameterRange("injection_rate", low, high),
            ParameterRange("default_threads", 2, 22),
            ParameterRange("mfg_threads", 10, 24),
            ParameterRange("web_threads", 14, 23),
        ]
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.samples < 10:
        raise SystemExit("--samples must be at least 10")

    classes = scenario(args.scenario)
    if args.backend == "analytic":
        backend = AnalyticWorkloadModel(classes=classes)
    else:
        backend = ThreeTierWorkload(
            classes=classes,
            warmup=2.0,
            duration=args.duration,
            seed=args.seed,
        )
    space = _space(args)

    print(
        f"Collecting {args.samples} samples from the {args.backend} "
        f"backend (scenario: {args.scenario}) ..."
    )
    dataset = SampleCollector(backend).collect(
        latin_hypercube(space, args.samples, seed=args.seed),
        progress=lambda done, total: print(
            f"  {done}/{total}", end="\r", flush=True
        ),
    )
    print()
    dataset.y = np.maximum(dataset.y, 1e-3)

    model = NeuralWorkloadModel(
        hidden=(16, 8),
        error_threshold=0.02 if args.fast else 0.005,
        max_epochs=1500 if args.fast else 10000,
        seed=args.seed,
    )
    print("Fitting and analyzing ...")
    report = characterize(
        dataset, model=model, cv_folds=5, seed=args.seed
    )
    path = report.save(args.output)
    print(f"Model accuracy: {100 * report.accuracy:.1f}%")
    print(f"Surface shapes: {report.surface_kinds}")
    print(f"Report written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
