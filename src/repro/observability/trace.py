"""Dependency-free request tracing: spans, a tracer, and a trace buffer.

The serving stack is a multi-stage pipeline (client → HTTP server → cache
→ micro-batcher → engine → registry, with reliability fallbacks and
lifecycle taps); when a request is slow, counters and gauges say *that* it
was slow but not *where*.  This module is the measurement layer underneath
``/traces`` and ``repro-trace``:

* :class:`Span` — one timed operation: monotonic start/duration, status,
  free-form attributes, and the ``trace_id``/``span_id``/``parent_id``
  triple that reassembles a request tree.
* :class:`Tracer` — creates spans, keeps the *active* span in a
  ``contextvars.ContextVar`` so nesting follows the call stack (and
  survives into worker callbacks on the same thread), and applies
  deterministic head sampling: the keep/drop decision is a pure function
  of the trace id, so every process that sees the same ``X-Trace-Id``
  makes the same choice without coordination.  Spans that run past
  ``slow_threshold_s`` are *always* recorded and flagged ``slow`` — tail
  latency must never be sampled away.
* :class:`TraceBuffer` — a bounded, thread-safe, in-memory map of
  ``trace_id -> [span dict]`` with oldest-trace eviction; the store behind
  ``GET /traces``.
* :class:`JsonlSpanExporter` — appends every finished span as one JSON
  line; the files it writes are what ``repro-trace summary`` aggregates.

Propagation uses two headers: :data:`TRACE_ID_HEADER` carries the trace
id, :data:`PARENT_SPAN_HEADER` the caller's span id.  Everything here is
stdlib-only and thread-safe.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import logging
import os
import random
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "TraceBuffer",
    "JsonlSpanExporter",
    "TRACE_ID_HEADER",
    "PARENT_SPAN_HEADER",
    "REQUEST_ID_HEADER",
    "STATUS_OK",
    "STATUS_ERROR",
]

#: Propagation headers (also sent back on responses for joinability).
TRACE_ID_HEADER = "X-Trace-Id"
PARENT_SPAN_HEADER = "X-Parent-Span-Id"
REQUEST_ID_HEADER = "X-Request-Id"

STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Hex digits in a trace id / span id.
_TRACE_ID_BITS = 128
_SPAN_ID_BITS = 64

#: The slow-request log (stdlib logging; handlers are the caller's choice).
slow_logger = logging.getLogger("repro.observability.slow")

_active_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_active_span", default=None
)


def _trace_key01(trace_id: str) -> float:
    """Map a trace id to [0, 1) deterministically (the sampling key).

    Every process hashing the same id gets the same key, so a sampling
    decision made by the client holds on the server without any extra
    header — the classic consistent head-sampling trick.
    """
    return int(trace_id[:13], 16) / float(16 ** 13)


class SpanContext:
    """The propagated identity of a trace: ids plus the sampling verdict."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: Optional[str], sampled: bool):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpanContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, sampled={self.sampled})"
        )


class Span:
    """One timed operation inside a trace.

    Durations come from ``time.perf_counter`` (monotonic); ``start_time``
    is wall-clock for display only.  A span is *recorded* into its
    tracer's buffer/exporter at :meth:`end` when its trace is sampled or
    when it ran past the slow threshold — an unsampled, fast span costs
    one object and two clock reads, nothing more.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_time",
        "duration_s",
        "status",
        "error",
        "attributes",
        "sampled",
        "_start_perf",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        sampled: bool,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.attributes = attributes
        self.status = STATUS_OK
        self.error: Optional[str] = None
        self.duration_s: Optional[float] = None
        # Wall-clock start is derived lazily in to_dict() — the hot path
        # pays for the monotonic clock only.
        self.start_time: Optional[float] = None
        self._token: Optional[contextvars.Token] = None
        self._start_perf = time.perf_counter()

    # ------------------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> "Span":
        """Attach one key/value to the span (lazy dict allocation)."""
        if self.attributes is None:
            self.attributes = {}
        self.attributes[key] = value
        return self

    def record_error(self, error: BaseException) -> "Span":
        """Mark the span failed with the error's type and message."""
        self.status = STATUS_ERROR
        self.error = f"{type(error).__name__}: {error}"
        return self

    @property
    def context(self) -> SpanContext:
        """This span's identity, ready for header injection."""
        return SpanContext(self.trace_id, self.span_id, self.sampled)

    def end(self) -> None:
        """Stop the clock and hand the span to the tracer (idempotent)."""
        if self.duration_s is not None:
            return
        self.duration_s = time.perf_counter() - self._start_perf
        if self._token is not None:
            _active_span.reset(self._token)
            self._token = None
        self._tracer._finish(self)

    def to_dict(self) -> dict:
        """JSON-serializable form (the shape in buffers and JSONL files)."""
        if self.start_time is None:
            elapsed = (
                self.duration_s
                if self.duration_s is not None
                else time.perf_counter() - self._start_perf
            )
            self.start_time = time.time() - elapsed
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes) if self.attributes else {},
        }

    # ------------------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.status == STATUS_OK:
            self.record_error(exc)
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"status={self.status!r}, duration={self.duration_s})"
        )


class _NoopSpan:
    """Shared do-nothing span for stages of unsampled traces.

    Every method is a no-op; one singleton serves all callers, so tracing
    a stage on the unsampled path costs a method call and a branch.
    """

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    sampled = False
    status = STATUS_OK
    duration_s = None
    attributes: Optional[dict] = None

    def set_attribute(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def record_error(self, error: BaseException) -> "_NoopSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class TraceBuffer:
    """Bounded, thread-safe, in-memory store of recent traces.

    Spans land keyed by ``trace_id`` in insertion order; once more than
    ``max_traces`` distinct traces are resident the *oldest* trace (by
    first-span arrival) is evicted whole.  A per-trace span bound guards
    against one runaway trace (e.g. a retrain with thousands of epoch
    spans) evicting everyone else's memory; spans past the bound are
    counted in ``dropped_spans`` instead of stored.
    """

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 512):
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        if max_spans_per_trace < 1:
            raise ValueError(
                f"max_spans_per_trace must be >= 1, got {max_spans_per_trace}"
            )
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self.dropped_spans = 0
        self.evicted_traces = 0
        # Plain dicts iterate in insertion order (3.7+), so the first key
        # is always the oldest trace; cheaper than an OrderedDict on the
        # per-span add path.
        self._traces: Dict[str, List[dict]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def add(self, span: dict) -> None:
        """Record one finished span under its trace."""
        trace_id = span["trace_id"]
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = []
                self._traces[trace_id] = spans
                while len(self._traces) > self.max_traces:
                    evicted = self._traces.pop(next(iter(self._traces)))
                    self.evicted_traces += 1
                    self.dropped_spans += len(evicted)
            if len(spans) >= self.max_spans_per_trace:
                self.dropped_spans += 1
                return
            spans.append(span)

    def get(self, trace_id: str) -> Optional[List[dict]]:
        """All spans of one trace (copy), or ``None`` if unknown."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return None if spans is None else list(spans)

    def traces(
        self,
        limit: Optional[int] = None,
        min_duration_s: Optional[float] = None,
        status: Optional[str] = None,
    ) -> List[dict]:
        """Recent traces, newest first, optionally filtered.

        ``min_duration_s`` keeps traces whose longest span (the root, in a
        well-formed trace) meets the bound; ``status`` keeps traces
        containing at least one span with that status.
        """
        with self._lock:
            snapshot = [
                (trace_id, list(spans))
                for trace_id, spans in self._traces.items()
            ]
        results = []
        for trace_id, spans in reversed(snapshot):
            durations = [
                s["duration_s"] for s in spans if s["duration_s"] is not None
            ]
            duration = max(durations) if durations else 0.0
            if min_duration_s is not None and duration < min_duration_s:
                continue
            if status is not None and all(
                s["status"] != status for s in spans
            ):
                continue
            results.append(
                {
                    "trace_id": trace_id,
                    "duration_s": duration,
                    "n_spans": len(spans),
                    "spans": spans,
                }
            )
            if limit is not None and len(results) >= limit:
                break
        return results

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def span_count(self) -> int:
        """Total spans resident right now."""
        with self._lock:
            return sum(len(spans) for spans in self._traces.values())

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceBuffer(traces={len(self)}/{self.max_traces}, "
            f"spans={self.span_count})"
        )


class JsonlSpanExporter:
    """Append finished spans to a JSONL file, one span per line.

    Thread-safe; lines are written and flushed atomically under a lock so
    concurrent spans never interleave.  The output is the input format of
    ``repro-trace summary`` / ``tail`` / ``show``.
    """

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")
        self._closed = False

    def write(self, span: dict) -> None:
        line = json.dumps(span, sort_keys=True)
        with self._lock:
            if self._closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS (the graceful-drain hook).

        ``write`` already flushes per line; this exists so drain
        sequences can treat every sink uniformly, and is safe after
        :meth:`close`.
        """
        with self._lock:
            if not self._closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Tracer:
    """Create spans, track the active one, sample, and fan out finishes.

    Parameters
    ----------
    sample_rate:
        Fraction of traces whose spans are recorded, in ``[0, 1]``.  The
        decision is *per trace* and a deterministic function of the trace
        id (consistent head sampling), so a caller and a server looking at
        the same ``X-Trace-Id`` agree without coordination.
    slow_threshold_s:
        Spans running at least this long are recorded and flagged
        ``slow=True`` even when their trace was sampled out, and land in
        the bounded slow-span log (:meth:`slow_spans`).  ``None`` disables
        the override.
    buffer:
        The :class:`TraceBuffer` finished spans land in (a default-sized
        one is created when omitted).
    exporter:
        Optional :class:`JsonlSpanExporter` (anything with
        ``write(span_dict)``) that every recorded span is also sent to.
    seed:
        Seeds the trace/span id generator — a seeded tracer emits a
        reproducible id stream, which (ids being the sampling key) makes
        the whole sampling sequence replayable in tests.
    on_span_end:
        Optional hook ``(span_dict) -> None`` called for every *recorded*
        span — the serving metrics use it to feed per-stage latency
        histograms.  Hook errors are swallowed; observability must never
        fail the traffic it observes.
    slow_log_size:
        Bound on the retained slow-span log.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        slow_threshold_s: Optional[float] = 0.5,
        buffer: Optional[TraceBuffer] = None,
        exporter: Optional[JsonlSpanExporter] = None,
        seed: Optional[int] = None,
        on_span_end: Optional[Callable[[dict], None]] = None,
        slow_log_size: int = 128,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if slow_threshold_s is not None and slow_threshold_s < 0:
            raise ValueError(
                f"slow_threshold_s must be >= 0, got {slow_threshold_s}"
            )
        self.sample_rate = float(sample_rate)
        self.slow_threshold_s = (
            None if slow_threshold_s is None else float(slow_threshold_s)
        )
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self.exporter = exporter
        self.on_span_end = on_span_end
        self.spans_started = 0
        self.spans_recorded = 0
        self._rng = random.Random(seed) if seed is not None else None
        self._id_lock = threading.Lock()
        # Span ids only need process-local uniqueness, so the unseeded
        # path uses a randomly-offset atomic counter instead of a urandom
        # syscall per span — this is on the predict hot path.
        self._span_counter = itertools.count(
            int.from_bytes(os.urandom(6), "big") << 16
        )
        self._slow: "deque[dict]" = deque(maxlen=int(slow_log_size))

    # ------------------------------------------------------------------
    # ids and sampling
    # ------------------------------------------------------------------

    def new_trace_id(self) -> str:
        # Trace ids must stay uniformly random: their leading hex digits
        # are the consistent head-sampling key.
        if self._rng is None:
            return os.urandom(_TRACE_ID_BITS // 8).hex()
        with self._id_lock:
            return f"{self._rng.getrandbits(_TRACE_ID_BITS):032x}"

    def new_span_id(self) -> str:
        if self._rng is None:
            return f"{next(self._span_counter) & 0xFFFFFFFFFFFFFFFF:016x}"
        with self._id_lock:
            return f"{self._rng.getrandbits(_SPAN_ID_BITS):016x}"

    def should_sample(self, trace_id: str) -> bool:
        """The deterministic head-sampling verdict for one trace id."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        try:
            return _trace_key01(trace_id) < self.sample_rate
        except (ValueError, IndexError):
            return True  # unparseable foreign id: keep it visible

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------

    def current_span(self):
        """The active span in this context (may be the no-op span)."""
        return _active_span.get()

    def start_span(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional[Span] = None,
        context: Optional[SpanContext] = None,
        activate: bool = True,
    ):
        """Open a span; nesting follows the active span unless overridden.

        Resolution order for the parent: explicit ``parent`` span, then
        explicit propagated ``context`` (extracted headers), then the
        context-local active span, then a brand-new root trace.  Returns
        the shared :data:`NOOP_SPAN` for interior spans of unsampled
        traces; roots of unsampled traces still get a real (cheap) span so
        the slow-threshold override can recover them.
        """
        self.spans_started += 1
        if parent is None and context is None:
            parent = _active_span.get()
        if parent is not None:
            if not parent.sampled:
                return NOOP_SPAN
            trace_id = parent.trace_id
            parent_id = parent.span_id
            sampled = True
        elif context is not None:
            trace_id = context.trace_id
            parent_id = context.span_id
            sampled = (
                context.sampled
                if context.sampled is not None
                else self.should_sample(trace_id)
            )
            if not sampled and self.slow_threshold_s is None:
                return NOOP_SPAN
        else:
            trace_id = self.new_trace_id()
            parent_id = None
            sampled = self.should_sample(trace_id)
            if not sampled and self.slow_threshold_s is None:
                return NOOP_SPAN
        span = Span(
            self,
            name,
            trace_id=trace_id,
            span_id=self.new_span_id(),
            parent_id=parent_id,
            sampled=sampled,
            attributes=attributes,
        )
        if activate:
            span._token = _active_span.set(span)
        return span

    def record_span(
        self,
        name: str,
        duration_s: float,
        parent: Optional[Span] = None,
        start_time: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
        status: str = STATUS_OK,
        error: Optional[str] = None,
    ) -> Optional[dict]:
        """Record a span retrospectively from externally-measured times.

        For stages whose timing is captured by another thread (the
        micro-batcher's queue-wait / flush-execute split) or derived after
        the fact (per-epoch training spans).  No-op unless the parent's
        trace is sampled.
        """
        if parent is None:
            parent = _active_span.get()
        if parent is None or not parent.sampled:
            return None
        span = {
            "trace_id": parent.trace_id,
            "span_id": self.new_span_id(),
            "parent_id": parent.span_id,
            "name": name,
            "start_time": (
                time.time() - duration_s if start_time is None else start_time
            ),
            "duration_s": float(duration_s),
            "status": status,
            "error": error,
            "attributes": dict(attributes) if attributes else {},
        }
        self._record(span)
        return span

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def extract_context(self, headers: Mapping[str, str]) -> Optional[SpanContext]:
        """Read propagation headers into a context (``None`` if absent)."""
        trace_id = headers.get(TRACE_ID_HEADER)
        if not trace_id:
            return None
        return SpanContext(
            trace_id=trace_id,
            span_id=headers.get(PARENT_SPAN_HEADER) or None,
            sampled=self.should_sample(trace_id),
        )

    @staticmethod
    def inject_context(span, headers: Dict[str, str]) -> Dict[str, str]:
        """Write a span's identity into an outgoing header dict."""
        if span is not None and span.trace_id:
            headers[TRACE_ID_HEADER] = span.trace_id
            headers[PARENT_SPAN_HEADER] = span.span_id
        return headers

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _finish(self, span: Span) -> None:
        slow = (
            self.slow_threshold_s is not None
            and span.duration_s is not None
            and span.duration_s >= self.slow_threshold_s
        )
        if not span.sampled and not slow:
            return
        payload = span.to_dict()
        if slow:
            payload["attributes"]["slow"] = True
            self._slow.append(payload)
            slow_logger.warning(
                "slow span %s trace=%s duration=%.1fms status=%s",
                span.name,
                span.trace_id,
                span.duration_s * 1000.0,
                span.status,
            )
        self._record(payload)

    def _record(self, payload: dict) -> None:
        self.spans_recorded += 1
        self.buffer.add(payload)
        if self.exporter is not None:
            try:
                self.exporter.write(payload)
            except Exception:  # noqa: BLE001 - observers must not fail traffic
                pass
        if self.on_span_end is not None:
            try:
                self.on_span_end(payload)
            except Exception:  # noqa: BLE001 - observers must not fail traffic
                pass

    def slow_spans(self) -> List[dict]:
        """The retained slow-span log, oldest first."""
        return list(self._slow)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(sample_rate={self.sample_rate}, "
            f"recorded={self.spans_recorded}/{self.spans_started})"
        )
