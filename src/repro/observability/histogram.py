"""Fixed-bucket latency histograms (Prometheus ``_bucket`` exposition).

The metrics layer's latency window (`ServingMetrics.latency_quantiles`)
describes the last N requests exactly but forgets everything older; a
fixed-bucket histogram is the complement — bounded memory forever, mergeable
across scrapes, and quantiles derivable server-side *or* by any Prometheus
backend from the cumulative ``_bucket`` lines.  One
:class:`LatencyHistogram` per pipeline stage turns the tracing layer's span
durations into the classic ``p50/p95/p99 by stage`` table.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Sequence, Tuple

__all__ = ["LatencyHistogram", "DEFAULT_BUCKETS"]

#: Bucket upper bounds in seconds, spanning one microsecond-scale cache hit
#: to a multi-second retrain stage; +Inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistogram:
    """Thread-safe fixed-bucket histogram of durations in seconds.

    Parameters
    ----------
    buckets:
        Strictly-increasing upper bounds (seconds).  An implicit ``+Inf``
        bucket catches everything beyond the last bound.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("buckets must not be empty")
        if any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be positive")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be strictly increasing: {bounds}")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        seconds = float(seconds)
        index = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += seconds

    def counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        pairs = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimated quantile: the upper bound of the bucket holding it.

        Conservative (rounds latency *up* to its bucket edge), which is
        the standard Prometheus ``histogram_quantile`` behaviour; samples
        in the +Inf bucket report the last finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self.count
        if total == 0:
            return 0.0
        target = q * total
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            if running >= target:
                return bound
        return self.bounds[-1]

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` estimates."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    @property
    def mean(self) -> float:
        """Mean observed duration (0 before any observation)."""
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly snapshot: quantile estimates plus totals."""
        snapshot = self.quantiles()
        with self._lock:
            snapshot["count"] = self.count
            snapshot["sum"] = self.sum
        return snapshot

    def prometheus_lines(self, name: str, labels: str = "") -> List[str]:
        """``_bucket``/``_sum``/``_count`` sample lines (no HELP/TYPE).

        ``labels`` is the rendered label set *without* the ``le`` pair,
        e.g. ``'stage="cache.lookup"'``.
        """
        prefix = f"{labels}," if labels else ""
        lines = []
        for bound, cumulative in self.cumulative():
            le = "+Inf" if bound == float("inf") else repr(bound)
            lines.append(f'{name}_bucket{{{prefix}le="{le}"}} {cumulative}')
        label_block = f"{{{labels}}}" if labels else ""
        with self._lock:
            lines.append(f"{name}_sum{label_block} {self.sum}")
            lines.append(f"{name}_count{label_block} {self.count}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.6f}s, "
            f"buckets={len(self.bounds)})"
        )
