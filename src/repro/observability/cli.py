"""``repro-trace`` — inspect traces from a JSONL export or a live server.

Subcommands::

    repro-trace tail    --file spans.jsonl [-n 20]     # recent spans
    repro-trace tail    --url http://host:port         # via GET /traces
    repro-trace show <trace-id> --file spans.jsonl     # indented span tree
    repro-trace summary --file spans.jsonl             # per-stage p50/95/99

``show`` renders the parent/child tree with per-span *self time* (the
span's duration minus its children's), which is what separates "the
request was slow" from "the request spent 9 of its 10 ms waiting in the
micro-batcher queue".  ``summary`` aggregates exact per-stage quantiles
from every span in a JSONL file — the offline counterpart of the
``/metrics`` stage histograms.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional
from urllib.request import urlopen

__all__ = ["build_parser", "main", "render_span_tree", "stage_summary"]


def _load_spans_file(path: str) -> List[dict]:
    """Parse a JSONL span export (unparseable lines are skipped)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(span, dict) and "trace_id" in span:
                spans.append(span)
    return spans


def _load_spans_url(
    url: str, trace_id: Optional[str] = None, limit: Optional[int] = None
) -> List[dict]:
    """Fetch spans from a server's ``GET /traces`` endpoint."""
    query = []
    if limit is not None:
        query.append(f"limit={int(limit)}")
    endpoint = url.rstrip("/") + "/traces"
    if query:
        endpoint += "?" + "&".join(query)
    with urlopen(endpoint, timeout=10.0) as response:
        payload = json.loads(response.read())
    spans = []
    for trace in payload.get("traces", []):
        if trace_id is not None and trace["trace_id"] != trace_id:
            continue
        spans.extend(trace["spans"])
    return spans


def _load_spans(args, trace_id: Optional[str] = None) -> List[dict]:
    if getattr(args, "file", None):
        return _load_spans_file(args.file)
    if getattr(args, "url", None):
        return _load_spans_url(
            args.url, trace_id=trace_id, limit=getattr(args, "limit", None)
        )
    raise ValueError("pass --file <spans.jsonl> or --url <server>")


def _format_span_line(span: dict) -> str:
    duration = span.get("duration_s") or 0.0
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(span.get("start_time", 0.0))
    )
    status = span.get("status", "ok")
    flags = " SLOW" if span.get("attributes", {}).get("slow") else ""
    return (
        f"{stamp}  {span['trace_id'][:8]}  {duration * 1000.0:9.3f} ms  "
        f"{status:5s}{flags}  {span['name']}"
    )


def render_span_tree(spans: List[dict]) -> str:
    """One trace's spans as an indented tree with self-times.

    Orphan spans (parent evicted or never recorded) are promoted to
    roots so a partially-retained trace still renders.
    """
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[str], List[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start_time", 0.0))

    lines: List[str] = []

    def walk(span: dict, depth: int) -> None:
        duration = span.get("duration_s") or 0.0
        kids = children.get(span["span_id"], [])
        child_time = sum(k.get("duration_s") or 0.0 for k in kids)
        self_time = max(0.0, duration - child_time)
        status = span.get("status", "ok")
        marker = "" if status == "ok" else f"  [{status}: {span.get('error')}]"
        slow = " SLOW" if span.get("attributes", {}).get("slow") else ""
        lines.append(
            f"{'  ' * depth}{span['name']:<{max(1, 36 - 2 * depth)}} "
            f"{duration * 1000.0:9.3f} ms  (self {self_time * 1000.0:8.3f} ms)"
            f"{slow}{marker}"
        )
        for kid in kids:
            walk(kid, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def stage_summary(spans: List[dict]) -> Dict[str, dict]:
    """Exact per-stage latency quantiles aggregated over spans.

    Returns ``{stage name: {count, p50, p95, p99, mean, errors}}`` with
    quantiles in seconds.
    """
    groups: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for span in spans:
        duration = span.get("duration_s")
        if duration is None:
            continue
        name = span["name"]
        groups.setdefault(name, []).append(float(duration))
        if span.get("status") == "error":
            errors[name] = errors.get(name, 0) + 1

    def exact_quantile(values: List[float], q: float) -> float:
        index = min(len(values) - 1, int(round(q * (len(values) - 1))))
        return values[index]

    summary = {}
    for name, values in groups.items():
        values.sort()
        summary[name] = {
            "count": len(values),
            "errors": errors.get(name, 0),
            "p50": exact_quantile(values, 0.50),
            "p95": exact_quantile(values, 0.95),
            "p99": exact_quantile(values, 0.99),
            "mean": sum(values) / len(values),
        }
    return summary


def format_summary_table(summary: Dict[str, dict]) -> str:
    """The ``summary`` subcommand's aligned text table."""
    header = (
        f"{'stage':<36} {'count':>7} {'errors':>7} "
        f"{'p50 ms':>10} {'p95 ms':>10} {'p99 ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(summary, key=lambda n: -summary[n]["p95"]):
        row = summary[name]
        lines.append(
            f"{name:<36} {row['count']:>7} {row['errors']:>7} "
            f"{row['p50'] * 1000.0:>10.3f} {row['p95'] * 1000.0:>10.3f} "
            f"{row['p99'] * 1000.0:>10.3f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Inspect serving traces: tail recent spans, render one "
            "trace's span tree, or aggregate per-stage latency quantiles."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def source(p, url=True):
        p.add_argument("--file", help="JSONL span export to read")
        if url:
            p.add_argument(
                "--url",
                help="serving base URL; reads GET /traces instead of a file",
            )

    p = sub.add_parser("tail", help="print the most recent spans")
    source(p)
    p.add_argument(
        "-n", "--limit", type=int, default=20, help="spans to show"
    )
    p.add_argument(
        "--slow-only", action="store_true",
        help="only spans flagged by the slow-request threshold",
    )

    p = sub.add_parser("show", help="render one trace as an indented tree")
    p.add_argument("trace_id", help="full or abbreviated (prefix) trace id")
    source(p)

    p = sub.add_parser(
        "summary", help="per-stage p50/p95/p99 table from a JSONL export"
    )
    source(p)
    return parser


def _cmd_tail(args) -> int:
    spans = _load_spans(args)
    if args.slow_only:
        spans = [
            s for s in spans if s.get("attributes", {}).get("slow")
        ]
    spans.sort(key=lambda s: s.get("start_time", 0.0))
    for span in spans[-args.limit:]:
        print(_format_span_line(span))
    return 0


def _cmd_show(args) -> int:
    spans = _load_spans(args, trace_id=None)
    matches = sorted(
        {
            s["trace_id"]
            for s in spans
            if s["trace_id"].startswith(args.trace_id)
        }
    )
    if not matches:
        print(f"error: no trace matching {args.trace_id!r}", file=sys.stderr)
        return 1
    if len(matches) > 1:
        print(
            f"error: ambiguous prefix {args.trace_id!r} matches "
            f"{len(matches)} traces: {[m[:12] for m in matches]}",
            file=sys.stderr,
        )
        return 1
    trace_id = matches[0]
    selected = [s for s in spans if s["trace_id"] == trace_id]
    print(f"trace {trace_id} ({len(selected)} spans)")
    print(render_span_tree(selected))
    return 0


def _cmd_summary(args) -> int:
    spans = _load_spans(args)
    if not spans:
        print("no spans found", file=sys.stderr)
        return 1
    print(format_summary_table(stage_summary(spans)))
    return 0


_COMMANDS = {
    "tail": _cmd_tail,
    "show": _cmd_show,
    "summary": _cmd_summary,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        sys.stdout = open(os.devnull, "w")
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
