"""Bridges from existing callback surfaces into the tracing layer.

The training loop already exposes an epoch-end callback
(:data:`repro.nn.training.EpochCallback`); :func:`epoch_span_hook` turns
it into per-epoch spans so a lifecycle retrain's time breaks down epoch by
epoch in the same trace tree as the serving stages around it.
"""

from __future__ import annotations

import time
from typing import Callable

from .trace import Tracer

__all__ = ["epoch_span_hook"]


def epoch_span_hook(
    tracer: Tracer,
    name: str = "lifecycle.retrain.epoch",
    every: int = 1,
) -> Callable:
    """An epoch-end callback ``(epoch, history) -> None`` emitting spans.

    Each recorded span covers the wall time since the previous recorded
    epoch (so with ``every=N`` one span covers N epochs) and carries the
    epoch index and current training loss.  Spans attach to the active
    span at call time — under the orchestrator that is the
    ``lifecycle.retrain`` span — and are dropped silently when the
    enclosing trace is unsampled.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    # Hook creation time stands in for the start of epoch 0; create the
    # hook immediately before calling ``fit``.
    state = {"last": time.perf_counter()}

    def callback(epoch: int, history) -> None:
        now = time.perf_counter()
        last: float = state["last"]
        if (epoch + 1) % every != 0:
            return
        tracer.record_span(
            name,
            duration_s=max(0.0, now - last),
            attributes={
                "epoch": int(epoch),
                "train_loss": float(history.final_train_loss),
                "epochs_covered": every if epoch + 1 > every else epoch + 1,
            },
        )
        state["last"] = now

    return callback
