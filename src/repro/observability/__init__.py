"""Observability: end-to-end tracing, per-stage profiling, histograms.

The serving + lifecycle stack answers requests through many stages (HTTP
parse, cache, micro-batcher queue/flush, registry load, engine predict,
fallback tiers, retrain/gate/promote cycles); this package shows where a
request's time went.  A :class:`~repro.observability.trace.Tracer` builds
parent/child :class:`~repro.observability.trace.Span` trees with
context-local nesting, deterministic head sampling, a slow-span override,
and propagation headers (``X-Trace-Id`` / ``X-Parent-Span-Id``); spans
land in a bounded in-memory
:class:`~repro.observability.trace.TraceBuffer` (behind ``GET /traces``)
and optionally a
:class:`~repro.observability.trace.JsonlSpanExporter` file (behind
``repro-trace``).  The paper's own methodology is measurement-driven —
Section 4 instruments per-transaction-class response times to build
Table 2 — and the traces this layer captures are the same kind of
per-stage timing data, fit for both debugging tail latency and training
workload models.  Everything is stdlib-only.
"""

from .histogram import DEFAULT_BUCKETS, LatencyHistogram
from .hooks import epoch_span_hook
from .trace import (
    PARENT_SPAN_HEADER,
    REQUEST_ID_HEADER,
    STATUS_ERROR,
    STATUS_OK,
    TRACE_ID_HEADER,
    JsonlSpanExporter,
    Span,
    SpanContext,
    TraceBuffer,
    Tracer,
)

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "TraceBuffer",
    "JsonlSpanExporter",
    "LatencyHistogram",
    "DEFAULT_BUCKETS",
    "epoch_span_hook",
    "TRACE_ID_HEADER",
    "PARENT_SPAN_HEADER",
    "REQUEST_ID_HEADER",
    "STATUS_OK",
    "STATUS_ERROR",
]
