"""Reliability toolkit: retries, circuit breaking, degradation, fault injection.

The serving PR made the paper's models a long-running service; this package
makes that service survivable.  :mod:`~repro.reliability.policies` holds the
control-flow primitives (:class:`Deadline`, :class:`RetryPolicy`,
:class:`CircuitBreaker`), :mod:`~repro.reliability.degradation` the
surrogate :class:`FallbackChain`, load-shedding error, and the
``healthy/degraded/unhealthy`` :class:`HealthMonitor`, and
:mod:`~repro.reliability.faults` a deterministic :class:`FaultPlan` harness
so every one of those paths is exercised by tests instead of outages.
"""

from .degradation import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    FallbackChain,
    FallbackResult,
    HealthMonitor,
    OverloadedError,
    fit_linear_surrogate,
)
from .faults import (
    SITE_BATCHER_FLUSH,
    SITE_DRIVER_INJECT,
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_COMPACT,
    SITE_REGISTRY_LOAD,
    SITE_REGISTRY_STAT,
    SITE_STORE_PROMOTE,
    SITE_STORE_SAVE,
    SITE_WORKER_HANDLE,
    FaultPlan,
    FaultRule,
    InjectedFault,
    SimulatedCrash,
)
from .policies import (
    BREAKER_STATES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BREAKER_STATES",
    "FallbackChain",
    "FallbackResult",
    "HealthMonitor",
    "OverloadedError",
    "fit_linear_surrogate",
    "HEALTHY",
    "DEGRADED",
    "UNHEALTHY",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "SimulatedCrash",
    "SITE_REGISTRY_STAT",
    "SITE_REGISTRY_LOAD",
    "SITE_BATCHER_FLUSH",
    "SITE_DRIVER_INJECT",
    "SITE_STORE_SAVE",
    "SITE_STORE_PROMOTE",
    "SITE_JOURNAL_APPEND",
    "SITE_JOURNAL_COMPACT",
    "SITE_WORKER_HANDLE",
]
