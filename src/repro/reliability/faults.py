"""Deterministic, seedable fault injection for the serving + training stack.

Every degradation path in :mod:`repro.serving` must be testable without a
real crash, so the components expose named *injection sites* — well-known
choke points that consult an optional :class:`FaultPlan` before doing their
work:

========================  ====================================================
site                      fired by
========================  ====================================================
``registry.stat``         :meth:`ModelRegistry.get_entry <repro.serving.registry.ModelRegistry.get_entry>`
                          before the artifact ``stat`` (file faults land here)
``registry.load``         :meth:`ModelRegistry._load <repro.serving.registry.ModelRegistry._load>`
                          before parsing the artifact
``batcher.flush``         :meth:`MicroBatcher._flush <repro.serving.batcher.MicroBatcher._flush>`
                          before the vectorized ``predict``
``driver.inject``         :class:`LoadDriver <repro.workload.driver.LoadDriver>`
                          per spawned transaction (via ``fault_hook``)
``store.save``            :meth:`VersionedModelStore.save_version <repro.lifecycle.store.VersionedModelStore.save_version>`
                          after the version file lands, before the manifest
``store.promote``         :meth:`VersionedModelStore.promote <repro.lifecycle.store.VersionedModelStore.promote>`
                          after the registry deploy, before the manifest
``journal.append``        :meth:`Journal.append <repro.durability.journal.Journal.append>`
                          after each framed record write
``journal.compact``       :meth:`Journal.compact <repro.durability.journal.Journal.compact>`
                          after the merged segment is written, before the
                          old segments are removed
``worker.handle``         :func:`repro.cluster.worker.main` before each
                          request is handled *inside the worker process*
                          (the worker-level kill points land here)
========================  ====================================================

A :class:`FaultPlan` maps sites to :class:`FaultRule`\\ s.  Rules fire by
*hit index* (``after`` skips the first N hits, ``count`` bounds how many
times a rule fires), so a plan is deterministic by construction; the only
randomness is the optional per-rule ``probability``, drawn from the plan's
seeded generator and therefore replayable.

Fault kinds
-----------
``latency``
    Sleep ``latency_s`` at the site (a slow dependency).
``error``
    Raise :class:`InjectedFault` (a crashing dependency).
``corrupt_artifact``
    Truncate the file passed as site context and bump its mtime — exactly
    what a non-atomic writer dying mid-``save_model`` leaves behind.
``clock_skew``
    Shift the file's mtime by ``skew_s`` without touching its bytes,
    confusing mtime-based hot-reload logic.
``partial_write``
    Chop the tail off the file passed as site context — a torn write: the
    bytes an OS-level crash left half-flushed at the end of a journal
    segment or a freshly deployed artifact.
``disk_full``
    Raise ``OSError(ENOSPC)`` at the site — the filesystem ran out of
    space mid-operation.
``crash_at``
    Raise :class:`SimulatedCrash` — a ``BaseException`` no component is
    allowed to swallow, so whatever on-disk state exists at that instant
    is exactly what a killed process would leave behind.  The chaos
    harness catches it at the top and "restarts" by running recovery.
``kill_worker``
    ``SIGKILL`` the *current process* — meaningful only inside a cluster
    worker (site ``worker.handle``), where it simulates a segfault or
    OOM-kill mid-request.  The supervisor must detect the death, fail
    over the in-flight request, and restart the worker.
``hang_worker``
    Sleep effectively forever (``latency_s`` when positive, else one
    hour) — a wedged worker: alive by ``waitpid``, dead by heartbeat.
``slow_worker``
    Sleep ``latency_s`` before handling — a degraded-but-correct worker
    (CPU contention, page-cache miss storm).

Because cluster workers are separate processes, a plan meant for them is
shipped as JSON (:meth:`FaultPlan.to_dict` on the parent side,
:meth:`FaultPlan.from_dict` in the worker).  A restarted worker receives
the same plan with fresh hit counters.
"""

from __future__ import annotations

import errno
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "SITE_REGISTRY_STAT",
    "SITE_REGISTRY_LOAD",
    "SITE_BATCHER_FLUSH",
    "SITE_DRIVER_INJECT",
    "SITE_STORE_SAVE",
    "SITE_STORE_PROMOTE",
    "SITE_JOURNAL_APPEND",
    "SITE_JOURNAL_COMPACT",
    "SITE_WORKER_HANDLE",
    "FAULT_KINDS",
    "InjectedFault",
    "SimulatedCrash",
    "FaultRule",
    "FaultPlan",
]

SITE_REGISTRY_STAT = "registry.stat"
SITE_REGISTRY_LOAD = "registry.load"
SITE_BATCHER_FLUSH = "batcher.flush"
SITE_DRIVER_INJECT = "driver.inject"
SITE_STORE_SAVE = "store.save"
SITE_STORE_PROMOTE = "store.promote"
SITE_JOURNAL_APPEND = "journal.append"
SITE_JOURNAL_COMPACT = "journal.compact"
SITE_WORKER_HANDLE = "worker.handle"

FAULT_KINDS = (
    "latency",
    "error",
    "corrupt_artifact",
    "clock_skew",
    "partial_write",
    "disk_full",
    "crash_at",
    "kill_worker",
    "hang_worker",
    "slow_worker",
)

#: Sleep used by ``hang_worker`` when no explicit ``latency_s`` is given —
#: long enough to trip any reasonable heartbeat, short enough that a leaked
#: worker cannot outlive a CI job by much.
_HANG_FOREVER_S = 3600.0


class InjectedFault(RuntimeError):
    """The exception raised by an ``error`` fault rule."""

    def __init__(self, site: str, message: Optional[str] = None):
        self.site = site
        super().__init__(message or f"injected fault at {site}")


class SimulatedCrash(BaseException):
    """A process kill simulated at an injection site.

    Deliberately *not* an :class:`Exception`: every ``except Exception``
    recovery path in the stack lets it through, so the on-disk state the
    chaos harness recovers from is the state an actual ``kill -9`` at
    that point would have left.  Only the harness itself catches it.
    """

    def __init__(self, site: str, message: Optional[str] = None):
        self.site = site
        super().__init__(message or f"simulated crash at {site}")


@dataclass
class FaultRule:
    """One fault at one site, armed for a deterministic slice of hits.

    The rule fires on hit indices ``[after, after + count)`` of its site
    (``count=None`` means forever), each time with ``probability`` drawn
    from the owning plan's seeded generator.
    """

    site: str
    kind: str
    after: int = 0
    count: Optional[int] = None
    probability: float = 1.0
    latency_s: float = 0.0
    skew_s: float = 3600.0
    message: str = ""
    fired: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 0:
            raise ValueError(f"after must be non-negative, got {self.after}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1 or None, got {self.count}")
        if not 0 <= self.probability <= 1:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {self.latency_s}")

    @property
    def exhausted(self) -> bool:
        """Whether the rule has fired its full budget."""
        return self.count is not None and self.fired >= self.count

    def to_dict(self) -> dict:
        """Wire form (excludes the runtime ``fired`` counter)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "after": self.after,
            "count": self.count,
            "probability": self.probability,
            "latency_s": self.latency_s,
            "skew_s": self.skew_s,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output (validates fields)."""
        known = {
            "site", "kind", "after", "count", "probability",
            "latency_s", "skew_s", "message",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown FaultRule field {unknown[0]!r}")
        return cls(**payload)


class FaultPlan:
    """A seedable schedule of faults, consulted at named injection sites.

    Parameters
    ----------
    rules:
        Initial :class:`FaultRule` set (more can be :meth:`add`\\ ed later).
    seed:
        Seed for the probability stream — same plan + same call sequence
        = same faults.
    sleep:
        Sleep function used by ``latency`` faults (injectable for tests).
    """

    def __init__(
        self,
        rules: Optional[List[FaultRule]] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.rules: List[FaultRule] = list(rules or [])
        self.enabled = True
        self.seed = int(seed)
        self._hits: Dict[str, int] = {}
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()

    def to_dict(self) -> dict:
        """JSON-serializable form — how a plan ships to worker processes.

        Hit counters are deliberately excluded: the receiving process
        starts a fresh schedule, which is exactly what a restarted worker
        should see.
        """
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            rules=[FaultRule.from_dict(r) for r in payload.get("rules", [])],
            seed=int(payload.get("seed", 0)),
        )

    # ------------------------------------------------------------------

    def add(self, site: str, kind: str, **kwargs) -> FaultRule:
        """Create, register, and return a new rule."""
        rule = FaultRule(site=site, kind=kind, **kwargs)
        with self._lock:
            self.rules.append(rule)
        return rule

    def clear(self) -> None:
        """Drop every rule (hit counters survive — they index site history)."""
        with self._lock:
            self.rules = []

    def hits(self, site: str) -> int:
        """How many times ``site`` has been reached so far."""
        with self._lock:
            return self._hits.get(site, 0)

    def hook(self, site: str, path: Optional[Union[str, Path]] = None):
        """A zero-argument callable firing ``site`` (for callback params)."""
        return lambda: self.fire(site, path=path)

    # ------------------------------------------------------------------

    def fire(self, site: str, path: Optional[Union[str, Path]] = None) -> None:
        """Apply every due rule for ``site``; ``error`` rules raise last."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            if not self.enabled:
                return
            due: List[FaultRule] = []
            for rule in self.rules:
                if rule.site != site or rule.exhausted or hit < rule.after:
                    continue
                if rule.probability < 1.0 and self._rng.random() > rule.probability:
                    continue
                rule.fired += 1
                due.append(rule)
        error: Optional[BaseException] = None
        for rule in due:
            if rule.kind == "latency":
                self._sleep(rule.latency_s)
            elif rule.kind == "corrupt_artifact":
                _corrupt_file(path, site)
            elif rule.kind == "clock_skew":
                _skew_mtime(path, rule.skew_s, site)
            elif rule.kind == "partial_write":
                _tear_tail(path, site)
            elif rule.kind == "disk_full":
                error = OSError(
                    errno.ENOSPC,
                    rule.message or f"injected disk full at {site}",
                    None if path is None else str(path),
                )
            elif rule.kind == "crash_at":
                # A crash preempts everything else scheduled at this hit.
                raise SimulatedCrash(site, rule.message or None)
            elif rule.kind == "kill_worker":
                # A real SIGKILL of the current process: no cleanup, no
                # atexit, no flushed buffers — only meaningful inside a
                # cluster worker whose supervisor will notice the death.
                os.kill(os.getpid(), signal.SIGKILL)
            elif rule.kind == "hang_worker":
                self._sleep(
                    rule.latency_s if rule.latency_s > 0 else _HANG_FOREVER_S
                )
            elif rule.kind == "slow_worker":
                self._sleep(rule.latency_s)
            elif rule.kind == "error":
                error = InjectedFault(site, rule.message or None)
        if error is not None:
            raise error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        armed = sum(not rule.exhausted for rule in self.rules)
        return f"FaultPlan(rules={len(self.rules)}, armed={armed})"


# ----------------------------------------------------------------------
# file-fault helpers
# ----------------------------------------------------------------------


def _require_path(path: Optional[Union[str, Path]], site: str) -> Path:
    if path is None:
        raise ValueError(
            f"file fault at {site} needs the site to pass a path context"
        )
    return Path(path)


def _corrupt_file(path: Optional[Union[str, Path]], site: str) -> None:
    """Truncate ``path`` mid-document, as a dying non-atomic writer would."""
    target = _require_path(path, site)
    try:
        text = target.read_text()
    except OSError:
        text = ""
    target.write_text(text[: len(text) // 2] if len(text) >= 2 else "{")
    _bump_mtime(target, 1_000_000_000)


def _tear_tail(path: Optional[Union[str, Path]], site: str) -> None:
    """Chop a few dozen bytes off the end of ``path`` — a torn OS write.

    Small enough to land inside the last framed journal record (or the
    closing brace of a JSON artifact), so recovery sees exactly the
    half-flushed tail a power cut leaves behind.
    """
    target = _require_path(path, site)
    try:
        size = os.stat(target).st_size
    except OSError:
        return
    if size == 0:
        return
    keep = max(0, size - max(1, min(48, size // 4)))
    with open(target, "rb+") as handle:
        handle.truncate(keep)
    _bump_mtime(target, 1_000_000_000)


def _skew_mtime(
    path: Optional[Union[str, Path]], skew_s: float, site: str
) -> None:
    """Shift the artifact mtime without touching its bytes."""
    target = _require_path(path, site)
    _bump_mtime(target, int(skew_s * 1e9))


def _bump_mtime(target: Path, delta_ns: int) -> None:
    try:
        stat = os.stat(target)
    except OSError:
        return
    os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + delta_ns))
