"""Graceful degradation: surrogate fallbacks, load shedding, health states.

When the MLP path fails — a corrupt artifact, a tripped circuit breaker,
an overloaded admission queue — the service should degrade, not die.  The
queueing-model literature reaches for the same trick (a cheap analytic
model backing up the learned one, e.g. *Learning Queuing Networks by
Recurrent Neural Networks*, arXiv:2002.10788); here the backup is a linear
least-squares surrogate distilled from the MLP itself at registration
time, so it exists even when the original training data is long gone.

Three pieces:

* :func:`fit_linear_surrogate` — probe a loaded
  :class:`~repro.models.neural.NeuralWorkloadModel` over its standardized
  input region and fit a :class:`~repro.models.linear.LinearWorkloadModel`
  to the probes (a few milliseconds, no training data needed).
* :class:`FallbackChain` — ordered predictors tried until one answers;
  answers past the first tier are flagged *degraded*.
* :class:`HealthMonitor` — the ``healthy`` / ``degraded`` / ``unhealthy``
  state machine surfaced on ``/healthz``, with a transition log.

Plus :class:`OverloadedError`, the exception the HTTP layer maps to
``503`` + ``Retry-After`` when load shedding kicks in.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..models.linear import LinearWorkloadModel
from ..preprocessing.scalers import StandardScaler

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "UNHEALTHY",
    "OverloadedError",
    "fit_linear_surrogate",
    "FallbackResult",
    "FallbackChain",
    "HealthMonitor",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_STATES = (HEALTHY, DEGRADED, UNHEALTHY)


class OverloadedError(RuntimeError):
    """The admission queue is full; the request was shed."""

    def __init__(self, retry_after: float = 1.0, message: Optional[str] = None):
        self.retry_after = max(0.0, float(retry_after))
        super().__init__(
            message
            or f"server overloaded; retry after {self.retry_after:.2f}s"
        )


def fit_linear_surrogate(
    model,
    n_probes: int = 64,
    spread: float = 2.0,
    ridge: float = 1e-6,
    seed: int = 0,
) -> LinearWorkloadModel:
    """Distill ``model`` into a linear surrogate by probing it.

    The probe region comes from the model's own input scaler: a fitted
    :class:`~repro.preprocessing.scalers.StandardScaler` remembers the
    training mean and spread, so ``mean ± spread * scale`` probes exactly
    the region the MLP was trained on.  Models without standardization
    statistics are probed on the unit cube around the origin.

    Parameters
    ----------
    model:
        A fitted model exposing ``predict`` (and ideally ``x_scaler_``).
    n_probes:
        Probe points; 64 four-dimensional probes fit in well under a
        millisecond of ``lstsq``.
    spread:
        Half-width of the probe region in scaler standard deviations.
    ridge:
        Tiny L2 keep-well-posed term for the closed-form solve.
    seed:
        Probe-placement seed (deterministic surrogates).
    """
    if n_probes < 2:
        raise ValueError(f"n_probes must be >= 2, got {n_probes}")
    scaler = getattr(model, "x_scaler_", None)
    n_inputs = getattr(model, "n_inputs", None) or getattr(model, "_n_inputs", None)
    if isinstance(scaler, StandardScaler) and scaler.mean_ is not None:
        mean = np.asarray(scaler.mean_, dtype=float)
        scale = np.asarray(scaler.scale_, dtype=float)
        n_inputs = mean.shape[0]
    else:
        if n_inputs is None:
            raise ValueError(
                "cannot infer the model's input dimension for probing"
            )
        mean = np.zeros(int(n_inputs))
        scale = np.ones(int(n_inputs))
    rng = np.random.default_rng(seed)
    probes = mean + scale * rng.uniform(
        -spread, spread, size=(int(n_probes), int(n_inputs))
    )
    return LinearWorkloadModel(ridge=ridge).fit(probes, model.predict(probes))


@dataclass
class FallbackResult:
    """One answered prediction plus where in the chain it came from."""

    outputs: np.ndarray
    source: str
    tier: int

    @property
    def degraded(self) -> bool:
        """Whether a non-primary tier answered."""
        return self.tier > 0


class FallbackChain:
    """Ordered ``(name, predict_fn)`` tiers tried until one answers.

    Tier 0 is the primary (the MLP path); anything after it is a
    degraded-mode surrogate.  ``predict`` raises the *primary* tier's
    error when every tier fails, so callers see the root cause rather
    than the surrogate's complaint.
    """

    def __init__(
        self,
        tiers: Sequence[Tuple[str, Callable[[np.ndarray], np.ndarray]]],
    ):
        self.tiers = list(tiers)
        if not self.tiers:
            raise ValueError("FallbackChain needs at least one tier")

    def predict(
        self, x: np.ndarray, start_tier: int = 0
    ) -> FallbackResult:
        """Try tiers from ``start_tier`` on; first success wins."""
        if not 0 <= start_tier < len(self.tiers):
            raise ValueError(
                f"start_tier must be in [0, {len(self.tiers)}), got {start_tier}"
            )
        first_error: Optional[BaseException] = None
        for tier in range(start_tier, len(self.tiers)):
            name, predict_fn = self.tiers[tier]
            try:
                outputs = np.asarray(predict_fn(x), dtype=float)
            except Exception as exc:  # noqa: BLE001 - tier failure, try next
                if first_error is None:
                    first_error = exc
                continue
            return FallbackResult(outputs=outputs, source=name, tier=tier)
        raise first_error if first_error is not None else RuntimeError(
            "fallback chain has no tiers to try"
        )

    def __len__(self) -> int:
        return len(self.tiers)


class HealthMonitor:
    """The ``healthy → degraded → unhealthy`` state machine for ``/healthz``.

    State is *derived*, not accumulated: every :meth:`update` recomputes it
    from the inputs (breaker states, shedding, servability), so the machine
    recovers the moment its inputs do — no decay timers to tune and nothing
    to drift in tests.  Transitions are logged for post-mortems.
    """

    def __init__(self, max_transitions: int = 64):
        self._status = HEALTHY
        self._transitions: List[Tuple[str, str, str]] = []
        self._max_transitions = int(max_transitions)
        self._lock = threading.Lock()

    @property
    def status(self) -> str:
        """The most recently computed state."""
        return self._status

    @property
    def transitions(self) -> List[Tuple[str, str, str]]:
        """Recent ``(old, new, reason)`` transitions, oldest first."""
        with self._lock:
            return list(self._transitions)

    def update(
        self,
        breaker_states: Mapping[str, str],
        shedding: bool = False,
        servable: bool = True,
    ) -> str:
        """Recompute the state from current conditions; returns it."""
        if not servable:
            status, reason = UNHEALTHY, "no servable prediction path"
        elif shedding:
            status, reason = DEGRADED, "load shedding active"
        elif any(state != "closed" for state in breaker_states.values()):
            tripped = sorted(
                name
                for name, state in breaker_states.items()
                if state != "closed"
            )
            status, reason = DEGRADED, f"breaker not closed: {tripped}"
        else:
            status, reason = HEALTHY, "all paths nominal"
        with self._lock:
            if status != self._status:
                self._transitions.append((self._status, status, reason))
                del self._transitions[: -self._max_transitions]
                self._status = status
        return status

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HealthMonitor(status={self._status!r})"
