"""Reliability primitives: deadlines, retries, and circuit breaking.

The serving stack turns the paper's instant-prediction promise into a
long-running service; this module holds the three control-flow policies
every such service needs:

* :class:`Deadline` — a monotonic-clock budget that a caller attaches to a
  request and every layer below honours (client → HTTP server → engine →
  micro-batcher), so slow components fail the *one* request that is out of
  time instead of piling up blocked threads.
* :class:`RetryPolicy` — capped exponential backoff with decorrelated
  jitter (sleeps always inside ``[base, cap]``), deadline-aware so a retry
  loop can never outlive its caller's budget.
* :class:`CircuitBreaker` — the classic closed / open / half-open machine
  over a sliding failure-rate window, with an injectable clock so state
  transitions are testable without wall-clock sleeps.

Everything here is stdlib-only and thread-safe.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Callable, Iterator, Optional, Tuple, Type, Union

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BREAKER_STATES",
]


class DeadlineExceeded(TimeoutError):
    """An operation ran past its :class:`Deadline`."""


class Deadline:
    """A fixed point in (monotonic) time that work must finish by.

    Parameters
    ----------
    seconds:
        Budget from *now*; must be non-negative.
    clock:
        Monotonic time source (injectable for tests).
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        if seconds < 0:
            raise ValueError(f"deadline budget must be non-negative, got {seconds}")
        self._clock = clock
        self.expires_at = clock() + float(seconds)

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Alias constructor reading as ``Deadline.after(0.25)``."""
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(f"{what} exceeded its deadline")

    def clamp(self, timeout: Optional[float] = None) -> float:
        """``timeout`` bounded by the remaining budget (floored at 0)."""
        remaining = max(0.0, self.remaining())
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.3f}s)"


#: Predicate or exception-class filter deciding whether an error is retryable.
RetryFilter = Union[
    Callable[[BaseException], bool],
    Type[BaseException],
    Tuple[Type[BaseException], ...],
]


class RetryPolicy:
    """Capped exponential backoff with decorrelated jitter.

    Sleep ``i`` is drawn uniformly from ``[base, min(cap, prev * multiplier)]``
    (the AWS "decorrelated jitter" scheme), so every sleep is inside
    ``[base, cap]`` while consecutive retries still spread out.

    Parameters
    ----------
    max_attempts:
        Total call attempts (first try included); must be >= 1.
    base / cap:
        Backoff floor and ceiling in seconds.
    multiplier:
        Growth factor on the previous delay before jittering.
    retry_on:
        Exception class(es) or a predicate ``exc -> bool``; non-matching
        errors propagate immediately.
    sleep:
        Sleep function (injectable for tests).
    seed:
        Seed for the jitter stream — a seeded policy replays exactly.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base: float = 0.05,
        cap: float = 2.0,
        multiplier: float = 3.0,
        retry_on: RetryFilter = Exception,
        sleep: Callable[[float], None] = time.sleep,
        seed: Optional[int] = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base < 0 or cap < base:
            raise ValueError(f"need 0 <= base <= cap, got base={base} cap={cap}")
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = int(max_attempts)
        self.base = float(base)
        self.cap = float(cap)
        self.multiplier = float(multiplier)
        self.retry_on = retry_on
        self.sleep = sleep
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------

    def delays(self) -> Iterator[float]:
        """The backoff sequence: ``max_attempts - 1`` jittered sleeps."""
        previous = self.base
        for _ in range(self.max_attempts - 1):
            ceiling = min(self.cap, max(self.base, previous * self.multiplier))
            delay = self._rng.uniform(self.base, ceiling)
            previous = delay
            yield delay

    def should_retry(
        self, exc: BaseException, retry_on: Optional[RetryFilter] = None
    ) -> bool:
        """Whether ``exc`` matches the retry filter."""
        matcher = self.retry_on if retry_on is None else retry_on
        if isinstance(matcher, (type, tuple)):
            return isinstance(exc, matcher)
        return bool(matcher(exc))

    def call(
        self,
        fn: Callable,
        *args,
        deadline: Optional[Deadline] = None,
        retry_on: Optional[RetryFilter] = None,
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
        tracer=None,
        span_name: str = "retry.attempt",
        **kwargs,
    ):
        """Run ``fn`` with retries; returns its result or raises the last error.

        A server-suggested ``retry_after`` attribute on the exception raises
        the next sleep (still capped at ``cap``); a ``deadline`` both clamps
        sleeps and stops retrying once the budget is spent.  With a
        ``tracer`` (any :class:`~repro.observability.trace.Tracer`-shaped
        object), every attempt gets its own ``span_name`` span — all under
        the caller's active span, so one logical request's retries share
        one trace and failed attempts show up as error spans.
        """
        attempt = 0
        delays = self.delays()
        while True:
            attempt += 1
            span = (
                tracer.start_span(span_name, attributes={"attempt": attempt})
                if tracer is not None
                else None
            )
            try:
                result = fn(*args, **kwargs)
                if span is not None:
                    span.end()
                return result
            except BaseException as exc:  # noqa: BLE001 - filtered below
                if span is not None:
                    span.record_error(exc)
                    span.end()
                if not self.should_retry(exc, retry_on):
                    raise
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc from None
                hint = getattr(exc, "retry_after", None)
                if isinstance(hint, (int, float)) and hint > 0:
                    delay = min(self.cap, max(delay, float(hint)))
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= delay:
                        raise exc from None
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
                self.sleep(delay)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding used by the metrics gauge (closed < half_open < open).
BREAKER_STATES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitOpenError(RuntimeError):
    """A call was refused because the circuit is open."""

    def __init__(self, retry_after: float = 1.0, message: Optional[str] = None):
        self.retry_after = max(0.0, float(retry_after))
        super().__init__(
            message
            or f"circuit breaker is open; retry after {self.retry_after:.2f}s"
        )


class CircuitBreaker:
    """Closed / open / half-open breaker over a failure-rate window.

    Closed, outcomes land in a sliding window of size ``window``; once at
    least ``min_samples`` are present and the failure rate reaches
    ``failure_threshold`` the breaker opens.  Open, every call is refused
    until ``reset_timeout`` has elapsed, then the breaker half-opens and
    admits up to ``half_open_probes`` probe calls: any probe failure
    re-opens it, ``half_open_probes`` successes close it and clear the
    window.

    Parameters
    ----------
    window / failure_threshold / min_samples:
        Sliding-window size, failure-rate trip point in ``(0, 1]``, and the
        volume floor below which the rate is not trusted.
    reset_timeout:
        Seconds to stay open before probing.
    half_open_probes:
        Probe budget (and required success count) while half-open.
    clock:
        Monotonic time source (injectable for tests).
    on_state_change:
        Optional ``(old_state, new_state) -> None`` hook (metrics).
    name:
        Label used in error messages.
    """

    def __init__(
        self,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_samples: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_state_change: Optional[Callable[[str, str], None]] = None,
        name: str = "",
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0 < failure_threshold <= 1:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be positive, got {reset_timeout}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_samples = int(min_samples)
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = int(half_open_probes)
        self.clock = clock
        self.on_state_change = on_state_change
        self.name = name
        self._outcomes: deque = deque(maxlen=self.window)
        self._state = CLOSED
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (applies the lazy open → half-open transition)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def failure_rate(self) -> float:
        """Failure fraction over the current window (0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 otherwise)."""
        with self._lock:
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            return max(
                0.0, self._opened_at + self.reset_timeout - self.clock()
            )

    def allow(self) -> bool:
        """Whether a call may proceed right now (reserves a half-open probe)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if (
                self._state == HALF_OPEN
                and self._probes_in_flight < self.half_open_probes
            ):
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        """Report a successful call."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._outcomes.clear()
                    self._transition(CLOSED)
            elif self._state == CLOSED:
                self._outcomes.append(True)

    def record_failure(self) -> None:
        """Report a failed call."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._open()
            elif self._state == CLOSED:
                self._outcomes.append(False)
                if (
                    len(self._outcomes) >= self.min_samples
                    and self.failure_rate() >= self.failure_threshold
                ):
                    self._open()

    def cancel(self) -> None:
        """Release a probe reserved by :meth:`allow` without an outcome.

        For calls that fail for reasons that say nothing about the guarded
        path's health (e.g. caller errors) — the probe slot is returned so
        a half-open breaker is not starved.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def call(self, fn: Callable, *args, **kwargs):
        """Guard one call: refuse when open, record the outcome otherwise."""
        if not self.allow():
            raise CircuitOpenError(
                self.retry_after(),
                message=(
                    f"circuit breaker {self.name or 'anonymous'} is "
                    f"{self._state}; retry after {self.retry_after():.2f}s"
                ),
            )
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        """Force the breaker closed and clear its window (ops override)."""
        with self._lock:
            self._outcomes.clear()
            self._probes_in_flight = 0
            self._probe_successes = 0
            self._opened_at = None
            self._transition(CLOSED)

    # ------------------------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self.clock()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._transition(OPEN)

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self.clock() >= self._opened_at + self.reset_timeout
        ):
            self._probes_in_flight = 0
            self._probe_successes = 0
            self._transition(HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self.on_state_change is not None:
            self.on_state_change(old_state, new_state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"failure_rate={self.failure_rate():.2f})"
        )
