"""Generate a complete characterization report for the 3-tier workload.

The whole methodology as one artifact: collect samples, cross-validate the
model (with bootstrap confidence intervals), classify the response
surfaces, compute sensitivities and exact local effects, rank recommended
configurations, and trace the throughput/latency Pareto frontier — written
to ``characterization_report.md``.

Usage::

    python examples/characterization_report.py          # ~2 minutes
    FAST=1 python examples/characterization_report.py   # ~30 seconds
"""

import os

import numpy as np

from repro.analysis import characterize
from repro.models import NeuralWorkloadModel
from repro.workload import (
    CapacityPlanner,
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    ThreeTierWorkload,
    latin_hypercube,
)

FAST = bool(os.environ.get("FAST"))

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 440, 580),
        ParameterRange("default_threads", 2, 22),
        ParameterRange("mfg_threads", 10, 24),
        ParameterRange("web_threads", 14, 23),
    ]
)


def main():
    # First-order capacity plan before any experiment runs.
    planner = CapacityPlanner()
    print(planner.plan(560).to_text())
    print()

    n_samples = 24 if FAST else 50
    duration = 5.0 if FAST else 12.0
    workload = ThreeTierWorkload(warmup=2.0, duration=duration, seed=42)
    print(f"Collecting {n_samples} samples ...")
    dataset = SampleCollector(workload).collect(
        latin_hypercube(SPACE, n_samples, seed=42)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)

    model = NeuralWorkloadModel(
        hidden=(16, 8),
        error_threshold=0.005,
        max_epochs=2000 if FAST else 10000,
        seed=0,
    )
    print("Characterizing (cross validation, surfaces, attribution) ...")
    report = characterize(
        dataset,
        model=model,
        response_limits={
            "manufacturing_rt": 0.18,
            "dealer_purchase_rt": 0.14,
            "dealer_manage_rt": 0.13,
            "dealer_browse_rt": 0.115,
        },
        cv_folds=5,
        seed=42,
    )
    path = report.save("characterization_report.md")
    print(f"\nModel accuracy: {100 * report.accuracy:.1f}%")
    print("Surface shapes:", report.surface_kinds)
    print(f"Full report written to {path}")


if __name__ == "__main__":
    main()
