"""PCA-based workload characterization and configuration subsetting.

Section 6 places the paper among "researches applying advanced statistical
methods to characterize computer workloads" — PCA for Java workloads
[10, 11] and benchmark subsetting [12-14, 19].  This example applies that
companion machinery to our own configuration samples: project the 5-D
indicator vectors onto principal components, read the dominant behavioral
axes, and pick a small representative subset of configurations to use as a
regression-test suite.

Usage::

    python examples/pca_characterization.py
"""

import numpy as np

from repro.analysis import PCA, subset_benchmarks
from repro.workload import (
    AnalyticWorkloadModel,
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.service import INPUT_NAMES, OUTPUT_NAMES

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 400, 600),
        ParameterRange("default_threads", 2, 22),
        ParameterRange("mfg_threads", 10, 24),
        ParameterRange("web_threads", 14, 23),
    ]
)


def main():
    print("Evaluating 120 configurations on the analytic surrogate ...")
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(SPACE, 120, seed=11)
    )
    behaviors = np.log(np.maximum(dataset.y, 1e-6))  # indicators span decades

    pca = PCA().fit(behaviors)
    print("\nPrincipal components of the indicator space:")
    for index, ratio in enumerate(pca.explained_variance_ratio_):
        loadings = pca.components_[index]
        strongest = np.argsort(-np.abs(loadings))[:2]
        axes = ", ".join(
            f"{OUTPUT_NAMES[j]} ({loadings[j]:+.2f})" for j in strongest
        )
        print(f"  PC{index + 1}: {100 * ratio:5.1f}% of variance — {axes}")
    needed = pca.n_components_for_variance(0.95)
    print(
        f"\n{needed} component(s) explain 95% of the behavioral variance: "
        "the five indicators are strongly coupled (queueing drives them "
        "all), exactly why the paper models them jointly."
    )

    # ------------------------------------------------------------------
    # Subsetting: pick 8 configurations that span the behavior space.
    # ------------------------------------------------------------------
    chosen = subset_benchmarks(behaviors, k=8)
    print("\n8 representative configurations (max-spread in PCA space):")
    header = "  " + "  ".join(f"{n:>15s}" for n in INPUT_NAMES)
    print(header + f"  {'effective_tps':>14s}")
    for index in chosen:
        cells = "  ".join(f"{v:15.0f}" for v in dataset.x[index])
        print(f"  {cells}  {dataset.y[index, 4]:14.1f}")
    print(
        "\nA tuning (or regression) campaign can exercise these 8 points "
        "instead of all 120 — the subsetting methodology of the cited "
        "related work, applied to configurations instead of benchmarks."
    )


if __name__ == "__main__":
    main()
