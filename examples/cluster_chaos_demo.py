"""Cluster chaos demo: SIGKILL two of three workers under live load.

The cluster layer's whole story in one script:

1. fit the paper's model and preload it into a supervised pool of three
   inference worker processes,
2. hammer the cluster from concurrent client threads,
3. mid-hammer, SIGKILL two workers outright — the worst case the
   bulkhead design is built for,
4. verify that **zero** requests failed: every caller got an answer from
   its primary worker, a sibling retry, or the degraded linear
   surrogate,
5. watch the supervisor respawn the corpses and the pool return to full
   strength, then take a clean drain.

Exit code 0 means the chaos property held; any caller-visible failure
exits 1 (this script doubles as the CI chaos-smoke step).

Usage::

    PYTHONPATH=src python examples/cluster_chaos_demo.py
"""

import signal
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path

import numpy as np

from repro.cluster import ClusterEngine
from repro.models import NeuralWorkloadModel, save_model

CONFIG = [450.0, 14.0, 16.0, 18.0]


def fit_model(seed=0):
    print(f"Fitting the workload model (seed {seed}) ...")
    rng = np.random.default_rng(seed)
    x = rng.uniform(1.0, 8.0, size=(40, 4))
    y = np.column_stack(
        [
            0.1 + 0.02 * (x[:, 1] - 4.0) ** 2,
            0.1 + 0.01 * x[:, 3],
            x[:, 0] * 0.05,
            x[:, 2] * 0.03 + 0.2,
            400.0 - 3.0 * (x[:, 3] - 5.0) ** 2,
        ]
    )
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=500, seed=seed
    )
    return model.fit(x, y)


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def main():
    model = fit_model()
    with tempfile.TemporaryDirectory() as tmp:
        save_model(model, Path(tmp) / "paper.json")

        print("Starting a 3-worker supervised cluster ...")
        engine = ClusterEngine(
            tmp,
            workers=3,
            replication=2,
            call_timeout=5.0,
            supervisor_options={
                "heartbeat_interval": 0.1,
                "restart_backoff_base": 0.05,
                "restart_window_s": 300.0,
                "restart_budget": 50,
            },
        ).start()
        try:
            pids = {
                wid: engine.supervisor.handle(wid).pid
                for wid in engine.supervisor.ready_ids()
            }
            print(f"  workers ready: {pids}")

            results = []
            errors = []
            lock = threading.Lock()

            def caller(n):
                for _ in range(n):
                    try:
                        result = engine.predict_detailed("paper", [CONFIG])
                        with lock:
                            results.append(result)
                    except Exception as exc:  # noqa: BLE001 - the verdict
                        with lock:
                            errors.append(exc)
                    time.sleep(0.01)

            threads = [
                threading.Thread(target=caller, args=(80,)) for _ in range(4)
            ]
            print("Hammering /predict from 4 threads (320 requests) ...")
            for t in threads:
                t.start()

            # Kill the two workers the router actually prefers for this
            # model — the primary first, then its failover sibling —
            # so both deaths land squarely in the serving path.
            primary, sibling = engine.router.replicas(
                "paper", engine.supervisor.ready_ids()
            )[:2]
            time.sleep(0.3)
            print(f"  SIGKILL worker {primary} (the primary, mid-load) ...")
            engine.supervisor.kill_worker(primary, sig=signal.SIGKILL)
            time.sleep(0.4)
            print(f"  SIGKILL worker {sibling} (the sibling, mid-load) ...")
            engine.supervisor.kill_worker(sibling, sig=signal.SIGKILL)

            for t in threads:
                t.join(timeout=120.0)

            sources = Counter(r.source for r in results)
            print(f"\n  answered: {len(results)}  failed: {len(errors)}")
            print(f"  answer sources: {dict(sources)}")
            print(
                f"  failovers: {engine.metrics.worker_failovers_total}  "
                f"restarts so far: {engine.metrics.worker_restarts_total}"
            )
            if errors:
                print(f"FAIL: {len(errors)} requests surfaced errors, "
                      f"first: {errors[0]!r}")
                return 1
            if len(results) != 320:
                print(f"FAIL: expected 320 answers, got {len(results)}")
                return 1

            print("\nWaiting for the supervisor to respawn the corpses ...")
            if not wait_for(
                lambda: len(engine.supervisor.ready_ids()) == 3
            ):
                print("FAIL: pool never returned to full strength")
                return 1
            if engine.metrics.worker_restarts_total < 2:
                print("FAIL: expected >= 2 supervised restarts")
                return 1
            after = {
                wid: engine.supervisor.handle(wid).pid
                for wid in engine.supervisor.ready_ids()
            }
            print(f"  workers ready again: {after}")
            health = engine.health()
            print(f"  health: {health['status']}  "
                  f"restarts: {health['worker_restarts_total']}")

            print("Draining the cluster ...")
            engine.drain(timeout=10.0)
        finally:
            engine.close()

    print("\nPASS: two SIGKILLs under load, zero failed requests.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
