"""Autotuning demo: serve → recommend under an SLO → promote → re-tune.

The paper's closing loop (Section 5.3) end to end, and what the CI
tuning smoke runs:

1. train a baseline characterization model and serve it with the
   recommendation engine attached;
2. ``POST /recommend`` with a response-time SLO objective — the search
   seeds with a scrambled Sobol sweep, refines by coordinate descent,
   and returns the best configuration with a surface-class rationale;
3. repeat the identical request — it must come back byte-identical and
   from the recommendation cache;
4. register the objective as *standing*, promote a retrained candidate
   through the versioned store, and assert the promote hook re-tuned
   the objective against the new artifact (the cache is invalidated, a
   fresh search runs, and ``GET /lifecycle`` reports the outcome).

Usage::

    python examples/tuning_demo.py
"""

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.lifecycle import (
    LifecycleOrchestrator,
    ObservationLog,
    VersionedModelStore,
)
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.serving import ServingClient, ServingEngine
from repro.serving.server import create_server
from repro.tuning import Constraint, Objective, RecommendationEngine
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.sampler import ConfigSpace, SampleCollector, latin_hypercube


def expect(condition: bool, what: str) -> None:
    if not condition:
        print(f"FAILED: expected {what}")
        sys.exit(1)


def train(seed: int, scale: float = 1.0) -> NeuralWorkloadModel:
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(ConfigSpace(), 24, seed=seed)
    )
    dataset.y = np.maximum(dataset.y * scale, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(10,), error_threshold=0.02, max_epochs=2000, seed=seed
    )
    return model.fit(dataset.x, dataset.y)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        registry = Path(tmp) / "registry"
        registry.mkdir()
        print("Training and deploying the baseline model ...")
        save_model(train(seed=7), registry / "paper.json")

        engine = ServingEngine(registry, max_wait_ms=1.0)
        tuner = RecommendationEngine(engine, default_budget=96)
        store = VersionedModelStore(Path(tmp) / "store")
        store.adopt(
            "paper", registry / "paper.json", metadata={"status": "baseline"}
        )
        orchestrator = LifecycleOrchestrator(
            registry,
            store,
            ObservationLog(),
            metrics=engine.metrics,
            tracer=engine.tracer,
            tuner=tuner,
        )
        server = create_server(
            engine, port=0, tuner=tuner, lifecycle=orchestrator
        )
        server.serve_background()
        client = ServingClient(server.url)
        print(f"Serving at {server.url}\n")

        objective = Objective(
            kind="slo",
            constraints=(Constraint("dealer_browse_rt", 0.5),),
        ).to_dict()
        print("POST /recommend (p99-style SLO: dealer_browse_rt <= 0.5s)")
        first = client.recommend("paper", objective=objective, seed=0)
        config = "  ".join(
            f"{k}={v:g}" for k, v in first["config"].items()
        )
        print(f"  -> {config}")
        print(
            f"  score {first['score']:g}, feasible {first['feasible']}, "
            f"{first['evals']} evals, "
            f"surface {first['rationale']['surface_class']}"
        )
        expect(first["feasible"], "the SLO recommendation to be feasible")

        repeat = client.recommend("paper", objective=objective, seed=0)
        expect(
            json.dumps(first, sort_keys=True)
            == json.dumps(repeat, sort_keys=True),
            "the identical request to return a byte-identical body",
        )
        expect(
            engine.metrics.recommendation_cache_hits_total == 1,
            "the repeat to hit the recommendation cache",
        )
        print("  repeat request: byte-identical, served from cache\n")

        print("Registering the SLO as a standing objective ...")
        tuner.register_standing(
            "paper",
            Objective(
                kind="slo",
                constraints=(Constraint("dealer_browse_rt", 0.5),),
            ),
        )

        print("Promoting a retrained candidate (shifted indicators) ...")
        searches_before = (
            engine.metrics.recommendations_total
            - engine.metrics.recommendation_cache_hits_total
        )
        version = store.save_version(
            "paper", train(seed=11, scale=1.25), {"status": "accepted"}
        )
        orchestrator.promote("paper", version)

        standing = tuner.standing_status()["paper"][0]
        expect(
            standing["retunes"] == 1,
            "the promote hook to re-tune the standing objective",
        )
        searches_after = (
            engine.metrics.recommendations_total
            - engine.metrics.recommendation_cache_hits_total
        )
        expect(
            searches_after > searches_before,
            "the re-tune to run a fresh (uncached) search",
        )
        retune = orchestrator.last_retune["paper"][0]
        print(
            f"  re-tune fired: invalidated {retune['invalidated']} cache "
            f"entr{'y' if retune['invalidated'] == 1 else 'ies'}, "
            f"config {'SHIFTED' if retune['shifted'] else 'stable'}"
        )

        lifecycle_payload = client._get_json("/lifecycle")
        expect(
            lifecycle_payload["tuning"]["paper"][0]["retunes"] == 1,
            "GET /lifecycle to surface the re-tune",
        )

        fresh = client.recommend("paper", objective=objective, seed=0)
        expect(
            fresh["artifact_mtime_ns"] != first["artifact_mtime_ns"],
            "post-promote recommendations to carry the new artifact version",
        )
        print("  stale recommendation can no longer be served\n")

        server.shutdown()
        server.server_close()
        print(
            "Tuning loop complete: SLO recommendation served and cached, "
            "promote invalidated the cache and re-tuned the standing "
            "objective."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
