"""The MLP extrapolation limitation and the logarithmic-network remedy.

Section 5.3: "neural network models cannot be used for extrapolation ...
The prediction accuracy of MLPs drop rapidly outside the range of training
data", pointing to logarithmic architectures [23].  This example makes the
failure visible on the workload itself: a model trained on injection rates
300-480 is asked about 500-640.

Usage::

    python examples/extrapolation.py
"""

import numpy as np

from repro.models import NeuralWorkloadModel
from repro.nn import LogarithmicNetwork
from repro.workload import (
    AnalyticWorkloadModel,
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    WorkloadConfig,
    latin_hypercube,
)

TRAIN_SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 300, 480),
        ParameterRange("default_threads", 12, 20),
        ParameterRange("mfg_threads", 14, 20),
        ParameterRange("web_threads", 18, 23),
    ]
)


def main():
    surrogate = AnalyticWorkloadModel()
    print("Collecting training samples (injection rate 300-480) ...")
    train = SampleCollector(surrogate).collect(
        latin_hypercube(TRAIN_SPACE, 80, seed=3)
    )
    throughput = train.y[:, 4:5]

    mlp = NeuralWorkloadModel(
        hidden=(16,), error_threshold=1e-5, max_epochs=6000, seed=0
    ).fit(train.x, throughput)
    log_net = LogarithmicNetwork(4, 1, seed=0)
    log_net.fit(train.x, throughput, max_epochs=6000)

    print("\nThroughput predictions beyond the training range:")
    print(
        f"{'injection':>10s} {'truth':>8s} {'MLP':>8s} "
        f"{'log-net':>8s}   (trained on 300-480)"
    )
    for rate in (400, 460, 500, 540, 580, 620, 640):
        config = WorkloadConfig(rate, 16, 16, 20)
        truth = float(surrogate.evaluate_vector(config)[4])
        point = config.as_vector().reshape(1, -1)
        mlp_value = float(mlp.predict(point)[0, 0])
        log_value = float(log_net.predict(point)[0, 0])
        marker = "  <- extrapolating" if rate > 480 else ""
        print(
            f"{rate:>10d} {truth:8.1f} {mlp_value:8.1f} "
            f"{log_value:8.1f}{marker}"
        )

    print(
        "\nInside the range both models track the truth; outside it the "
        "sigmoid MLP saturates toward its training plateau while the "
        "non-saturating logarithmic network keeps following the trend "
        "(until the system's own saturation knee, which no regression "
        "model can know about)."
    )


if __name__ == "__main__":
    main()
