"""Quickstart: simulate the 3-tier workload and train the paper's model.

Runs in under a minute:

1. simulate a handful of configurations of the 3-tier system,
2. train the neural workload model on the (configuration -> indicators)
   samples,
3. predict an unseen configuration and compare with a fresh simulation.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.models import NeuralWorkloadModel
from repro.workload import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    ThreeTierWorkload,
    WorkloadConfig,
    latin_hypercube,
)
from repro.workload.service import OUTPUT_NAMES


def main():
    # --- 1. simulate one configuration, look at the indicators -----------
    workload = ThreeTierWorkload(warmup=1.0, duration=6.0, seed=1)
    config = WorkloadConfig(
        injection_rate=450, default_threads=14, mfg_threads=16, web_threads=19
    )
    metrics = workload.run(config)
    print("One simulated configuration:", config)
    for name in OUTPUT_NAMES:
        value = metrics.indicators[name]
        unit = "tps" if name == "effective_tps" else "s"
        print(f"  {name:22s} {value:8.3f} {unit}")
    print(f"  cpu utilization        {metrics.cpu_utilization:8.2f}")

    # --- 2. collect a small sample set and train the paper's model -------
    space = ConfigSpace(
        [
            ParameterRange("injection_rate", 350, 520),
            ParameterRange("default_threads", 6, 20),
            ParameterRange("mfg_threads", 12, 20),
            ParameterRange("web_threads", 15, 22),
        ]
    )
    print("\nCollecting 24 samples from the simulator ...")
    dataset = SampleCollector(workload).collect(
        latin_hypercube(space, 24, seed=7)
    )
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.01, max_epochs=4000, seed=0
    )
    model.fit(dataset.x, dataset.y)
    print(
        f"Trained {model!r} in {model.total_epochs_} epochs "
        f"(stopped by {model.training_results_[0].stopped_by})"
    )

    # --- 3. predict an unseen configuration and check against reality ----
    unseen = WorkloadConfig(
        injection_rate=480, default_threads=12, mfg_threads=16, web_threads=20
    )
    predicted = model.predict(unseen.as_vector())[0]
    actual = ThreeTierWorkload(warmup=1.0, duration=6.0, seed=99).run(unseen)
    print(f"\nUnseen configuration {unseen}:")
    print(f"  {'indicator':22s} {'predicted':>10s} {'simulated':>10s}")
    for name, value in zip(OUTPUT_NAMES, predicted):
        print(
            f"  {name:22s} {value:10.3f} "
            f"{actual.indicators[name]:10.3f}"
        )


if __name__ == "__main__":
    main()
