"""Linear vs polynomial vs log-linear vs RBF vs neural, plus DOE.

The paper argues that prior linear-model methodologies [2, 20, 21] cannot
capture this workload's behavior.  This example runs every model family in
the repo through the same 5-fold cross validation and prints a ranking, then
demonstrates the Design-of-Experiments workflow the prior work used.

Usage::

    python examples/model_comparison.py
"""

import numpy as np

from repro.model_selection import cross_validate
from repro.models import (
    DOEWorkloadModel,
    FactorLevels,
    LinearWorkloadModel,
    LogLinearWorkloadModel,
    NeuralWorkloadModel,
    PolynomialWorkloadModel,
    RBFWorkloadModel,
    central_composite,
)
from repro.workload import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    ThreeTierWorkload,
    latin_hypercube,
)

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 440, 580),
        ParameterRange("default_threads", 2, 22),
        ParameterRange("mfg_threads", 10, 24),
        ParameterRange("web_threads", 14, 23),
    ]
)

FAMILIES = {
    "neural (paper)": lambda t: NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.005, max_epochs=8000, seed=42 + t
    ),
    "linear": lambda t: LinearWorkloadModel(),
    "polynomial deg-2": lambda t: PolynomialWorkloadModel(degree=2),
    "polynomial deg-3": lambda t: PolynomialWorkloadModel(degree=3),
    "log-linear": lambda t: LogLinearWorkloadModel(),
    "rbf": lambda t: RBFWorkloadModel(n_centers=25, seed=t),
}


def main():
    workload = ThreeTierWorkload(warmup=2.0, duration=10.0, seed=42)
    print("Collecting 50 samples ...")
    dataset = SampleCollector(workload).collect(
        latin_hypercube(SPACE, 50, seed=42)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)

    print("\n5-fold cross validation (harmonic-mean relative error):")
    print(f"{'model':20s} {'overall error':>14s} {'accuracy':>10s}")
    rows = []
    for name, factory in FAMILIES.items():
        report = cross_validate(factory, dataset.x, dataset.y, k=5, seed=42)
        rows.append((report.overall_error, name, report))
    for error, name, report in sorted(rows):
        print(f"{name:20s} {100 * error:13.2f}% {100 * (1 - error):9.1f}%")

    # ------------------------------------------------------------------
    # The prior work's DOE approach: a designed experiment plus a
    # fixed-order model, with per-factor effect estimates.
    # ------------------------------------------------------------------
    print("\nDesign-of-Experiments workflow (prior work [2, 20, 21]):")
    factors = [
        FactorLevels("injection_rate", 440, 580),
        FactorLevels("default_threads", 2, 22),
        FactorLevels("mfg_threads", 10, 24),
        FactorLevels("web_threads", 14, 23),
    ]
    design = central_composite(factors, center_points=2)
    print(f"  central composite design: {design.shape[0]} runs")
    responses = SampleCollector(workload).collect(
        [  # evaluate the designed runs on the simulator
            c for c in map_design(design)
        ]
    )
    doe = DOEWorkloadModel(factors, interactions=True, quadratic=True)
    doe.fit(responses.x, np.maximum(responses.y, 1e-3))
    print("  strongest effects on effective throughput (coded units):")
    for term, effect in list(doe.effects(output_index=4).items())[:6]:
        print(f"    {term:35s} {effect:+9.2f}")


def map_design(design):
    from repro.workload import WorkloadConfig

    return [WorkloadConfig.from_vector(row) for row in design]


if __name__ == "__main__":
    main()
