"""Failure injection: how a tuned configuration absorbs a database stall.

Injects a 3-second, 4x database slowdown into two configurations — the
advisor-style tuned one and a marginally-provisioned one — and compares the
latency spike and the recovery time from the windowed timelines.  Headroom
is what you buy with the extra threads.

Usage::

    python examples/failure_injection.py
"""

import numpy as np

from repro.workload import (
    DatabaseSlowdown,
    ThreeTierWorkload,
    WorkloadConfig,
    timeline_from_transactions,
)

DISTURBANCE = DatabaseSlowdown(start=8.0, duration=3.0, factor=4.0)

CONFIGS = {
    "tuned (headroom)": WorkloadConfig(480, 16, 16, 20),
    "marginal": WorkloadConfig(480, 10, 16, 16),
}


def main():
    for label, config in CONFIGS.items():
        workload = ThreeTierWorkload(
            warmup=2.0, duration=16.0, seed=21, collect_transactions=True
        )
        metrics = workload.run(config, disturbances=[DISTURBANCE])
        timeline = timeline_from_transactions(
            metrics.transactions, interval=1.0, start=2.0
        )

        baseline = timeline.baseline("dealer_browse_rt", until=8.0)
        spike = timeline.peak_deviation(
            "dealer_browse_rt", after=8.0, baseline=baseline
        )
        recovery = timeline.recovery_time(
            "dealer_browse_rt",
            disturbance_end=11.0,
            baseline_until=8.0,
            tolerance=0.5,
        )
        print("=" * 70)
        print(f"{label}: {config}")
        print(
            f"  baseline browse latency {1000 * baseline:.1f} ms; "
            f"peak spike {100 * spike:.0f}% over baseline; "
            f"recovery {'never' if recovery is None else f'{recovery:.0f}s'}"
        )
        print(
            timeline.to_text(names=["dealer_browse_rt", "effective_tps"])
        )
        print()


if __name__ == "__main__":
    main()
