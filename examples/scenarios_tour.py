"""Tour of the workload scenarios: how the tuning story shifts with the mix.

For each named scenario the tour prints the first-order capacity plan (how
the pool knees move), simulates the same two configurations, and shows the
latency breakdown of the slowest class — the quick-look workflow for "we
changed the traffic mix; what should we re-tune?".

Usage::

    python examples/scenarios_tour.py
"""

import numpy as np

from repro.workload import (
    CapacityPlanner,
    ThreeTierWorkload,
    WorkloadConfig,
    available_scenarios,
    breakdown,
    scenario,
)

BASELINE = WorkloadConfig(
    injection_rate=480, default_threads=12, mfg_threads=16, web_threads=18
)


def main():
    for name in available_scenarios():
        classes = scenario(name)
        planner = CapacityPlanner(classes=classes)
        print("=" * 72)
        print(f"scenario: {name}")
        print(planner.plan(480).to_text())

        workload = ThreeTierWorkload(
            classes=classes,
            warmup=1.0,
            duration=6.0,
            seed=11,
            collect_transactions=True,
        )
        metrics = workload.run(BASELINE)
        print(
            f"  at {BASELINE}: effective "
            f"{metrics.indicators['effective_tps']:.0f} tps, "
            f"cpu {100 * metrics.cpu_utilization:.0f}%"
        )

        # Which class suffers most, and where does its time go?
        slowest = max(
            metrics.per_class.values(), key=lambda s: s.mean_response_time
        )
        decomposition = breakdown(metrics.transactions)
        if slowest.name in decomposition:
            dominant = decomposition[slowest.name].dominant_stage()
            print(
                f"  slowest class: {slowest.name} "
                f"({1000 * slowest.mean_response_time:.1f} ms mean; "
                f"{100 * dominant.share:.0f}% in {dominant.stage})"
            )
        print(
            f"  bottleneck knob (first-order): "
            f"{planner.bottleneck(BASELINE)}"
        )
        print()


if __name__ == "__main__":
    main()
