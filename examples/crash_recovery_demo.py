"""Crash-recovery demo: kill a promote mid-flight, restart, keep serving.

The durability subsystem's contract on one tiny deployment — this is
also what the CI crash-recovery smoke runs:

1. train a baseline characterization model, store it as version 1 in a
   :class:`~repro.lifecycle.store.VersionedModelStore`, and promote it
   into a serving registry directory;
2. journal a stream of observations (the measurements that feed drift
   detection) into a CRC32-framed write-ahead journal;
3. arm a :class:`~repro.reliability.faults.FaultPlan` that tears bytes
   off the freshly deployed artifact and then raises
   :class:`~repro.reliability.faults.SimulatedCrash` inside
   ``store.promote`` — after the registry deploy, before the manifest
   commit: the classic torn-promote window;
4. "restart": run the startup
   :class:`~repro.durability.recovery.RecoveryManager`, which notices the
   dirty shutdown (no clean-shutdown marker), quarantines the torn
   artifact, redeploys the last verified-good promoted version, and
   repairs the journal's torn tail;
5. verify serving resumes: the engine answers ``/predict`` with version
   1's exact outputs and the recovery counters are visible in
   ``/metrics``.

Usage::

    python examples/crash_recovery_demo.py
"""

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.durability.integrity import CleanShutdownMarker, verify_file
from repro.durability.journal import Journal
from repro.durability.recovery import RecoveryManager
from repro.lifecycle.store import VersionedModelStore
from repro.models.neural import NeuralWorkloadModel
from repro.reliability.faults import (
    SITE_STORE_PROMOTE,
    FaultPlan,
    SimulatedCrash,
)
from repro.serving import ServingEngine
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.service import WorkloadConfig

CONFIG = [300.0, 18.0, 20.0, 22.0]


def expect(condition: bool, what: str) -> None:
    if not condition:
        print(f"FAILED: expected {what}")
        sys.exit(1)


def train(seed: int) -> NeuralWorkloadModel:
    rng = np.random.default_rng(seed)
    backend = AnalyticWorkloadModel()
    xs, ys = [], []
    for _ in range(48):
        config = WorkloadConfig(
            injection_rate=float(rng.uniform(150, 400)),
            default_threads=int(rng.integers(12, 28)),
            mfg_threads=int(rng.integers(12, 28)),
            web_threads=int(rng.integers(12, 28)),
        )
        xs.append(config.as_vector())
        ys.append(backend.evaluate_vector(config))
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.02, max_epochs=400, seed=seed
    )
    return model.fit(np.array(xs), np.array(ys))


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp) / "store"
        registry_dir = Path(tmp) / "registry"
        journal_dir = Path(tmp) / "journal"

        # ---- 1. a healthy deployment -------------------------------
        print("Training baseline (v1) and a candidate (v2) ...")
        baseline, candidate = train(7), train(11)
        store = VersionedModelStore(store_root)
        v1 = store.save_version("paper", baseline)
        store.promote("paper", v1, registry_dir)
        print(f"  promoted v{v1} into {registry_dir.name}/paper.json\n")

        # ---- 2. journaled observations ------------------------------
        journal = Journal(journal_dir, sync="flush")
        for step in range(5):
            journal.append(json.dumps({"step": step}).encode())
        print("Journaled 5 observation records (CRC32-framed WAL).")

        # ---- 3. crash inside promote() ------------------------------
        plan = FaultPlan()
        plan.add(SITE_STORE_PROMOTE, "partial_write", count=1)
        plan.add(SITE_STORE_PROMOTE, "crash_at")
        dying_store = VersionedModelStore(store_root, faults=plan)
        v2 = dying_store.save_version("paper", candidate)
        print(f"Promoting v{v2} with a kill armed inside the promote "
              "window ...")
        try:
            dying_store.promote("paper", v2, registry_dir)
        except SimulatedCrash as crash:
            print(f"  process died: {crash!r}")
        else:
            expect(False, "the armed crash to fire")
        # The kill also abandons the journal handle — never closed.

        deployed = registry_dir / "paper.json"
        verdict, _, _ = verify_file(deployed)
        expect(verdict is False, "a torn deployed artifact")
        expect(store.promoted_version("paper") == v1,
               "the manifest commit to have never happened")
        print("  torn state: deployed artifact fails verification, "
              f"manifest still promotes v{v1}.\n")

        # ---- 4. restart: startup recovery ---------------------------
        print("Restarting: running startup recovery ...")
        recovered_store = VersionedModelStore(store_root)
        engine = ServingEngine(registry_dir, batching=False, tracing=False)
        report = RecoveryManager(
            store=recovered_store,
            registry_dir=registry_dir,
            journal_dir=journal_dir,
            marker=CleanShutdownMarker(registry_dir),
            metrics=engine.metrics,
        ).run()
        print(json.dumps(report.to_dict(), indent=2))
        expect(report.clean_shutdown is False, "a dirty-shutdown verdict")
        expect(report.redeployed.get("paper") == v1,
               f"v{v1} to be redeployed over the torn artifact")
        expect(len(report.quarantined_artifacts) == 1,
               "the torn artifact to be quarantined, not deleted")
        expect(report.journal["recovered"] == 5, "all journal records back")

        # ---- 5. serving resumes on the last good version ------------
        with engine:
            outputs = engine.predict("paper", [CONFIG])
        np.testing.assert_allclose(
            outputs[0],
            baseline.predict(np.asarray([CONFIG]))[0],
            rtol=1e-9,
        )
        metrics = engine.metrics.to_dict()
        expect(metrics["recoveries_total"] == 1, "recovery counted")
        expect(metrics["auto_rollbacks_total"] >= 1, "rollback counted")
        expect(metrics["journal_records_recovered_total"] == 5,
               "journal replay counted")
        print("\nCrash recovery complete: the torn promote was rolled "
              f"back, /predict serves v{v1}'s exact outputs, and the "
              "recovery counters are exported.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
