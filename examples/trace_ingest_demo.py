"""Trace factory demo: one request log through every pipeline stage.

The full ``repro.traces`` loop on the bundled sample trace, end to end
and deterministic — this is also what the CI trace-ingest smoke runs:

1. **ingest** ``data/sample_trace.csv`` — streaming ETL with skip
   counters and per-window aggregation;
2. **fit** — MLE over the simulator's own distribution families with
   KS goodness-of-fit and CV diagnostics, pooled and per window;
3. **emit** — compile the fit into a named
   :class:`~repro.traces.family.ScenarioFamily`, registered next to the
   hand-written scenarios and saved as one JSON document;
4. **validate** — replay through the simulator and compare sim-vs-trace
   moments (the demo *asserts* the verdict passes);
5. **replay** — the emitted mix on the full 3-tier simulator with the
   piecewise-window rate profile applied as standard disturbances;
6. **serve** — turn the family into trace-shaped prediction traffic and
   answer it with the analytic workload model.

Usage::

    python examples/trace_ingest_demo.py
"""

import sys
from pathlib import Path

from repro.traces import (
    ScenarioFamily,
    emit_family,
    fit_trace,
    ingest,
    run_three_tier,
    trace_shaped_requests,
    validate_family,
)
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.scenarios import available_scenarios
from repro.workload.service import WorkloadConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
SAMPLE = REPO_ROOT / "data" / "sample_trace.csv"


def main() -> int:
    print(f"=== 1. ingest {SAMPLE.name} ===")
    trace = ingest(SAMPLE)
    stats = trace.stats
    print(
        f"{stats.parsed} records parsed ({stats.skipped_total} skipped), "
        f"{trace.duration:.0f}s at {trace.mean_rate():.1f} req/s"
    )
    for name, count in sorted(trace.class_counts().items()):
        print(f"  class {name:<10} {count:>5} arrivals")

    print("\n=== 2. fit distributions (40s windows) ===")
    fit = fit_trace(trace, window_s=40.0)
    print(
        f"arrival process: cv={fit.arrival_cv:.2f} ({fit.arrival_verdict}); "
        f"pooled inter-arrival -> {fit.interarrival.family} "
        f"(mean {fit.interarrival.mean * 1000:.1f} ms)"
    )
    for name, fitted in sorted(fit.class_service.items()):
        print(
            f"  service[{name}]: {fitted.family} mean={fitted.mean * 1000:.1f} ms "
            f"ks={'ok' if fitted.ks_pass else 'reject'}"
        )
    for window in fit.windows:
        print(f"  window @{window.start:>5.0f}s  rate {window.rate:5.1f}/s")

    print("\n=== 3. emit the scenario family ===")
    family = emit_family(fit, "sample-day", class_counts=trace.class_counts())
    registered = family.register()
    out = REPO_ROOT / "data" / "sample_day.scenario.json"
    family.save(out)
    assert registered in available_scenarios()
    print(f"registered scenario {registered!r}, saved {out.name}")
    print(f"reloaded OK: {ScenarioFamily.load(out).name == family.name}")

    print("\n=== 4. validate sim vs trace ===")
    report = validate_family(family, trace, seed=0, tolerance=0.10)
    print(report.to_text())
    assert report.passed, "validation must pass on the bundled sample"

    print("\n=== 5. replay on the full 3-tier simulator ===")
    metrics = run_three_tier(family, warmup=1.0, duration=8.0, seed=0)
    print(
        f"injected={metrics.injected} completed={metrics.completed} "
        f"effective_tps={metrics.indicators['effective_tps']:.1f}"
    )
    assert metrics.completed > 0

    print("\n=== 6. trace-shaped serving traffic ===")
    requests = trace_shaped_requests(family, n=12, seed=0, time_scale=0.01)
    model = AnalyticWorkloadModel()
    for send_at, vector in requests[:5]:
        indicators = model.evaluate(WorkloadConfig.from_vector(vector))
        print(
            f"  t={send_at:5.2f}s rate={vector[0]:5.1f}/s -> "
            f"predicted tps {indicators['effective_tps']:.1f}"
        )
    print(f"({len(requests)} requests total, shaped like the trace profile)")

    print("\ndemo complete: trace -> fit -> scenario -> validated replay")
    return 0


if __name__ == "__main__":
    sys.exit(main())
