"""The paper's full performance-tuning workflow, end to end.

Reproduces Section 5's methodology as a performance engineer would use it:

1. collect samples across the configuration space (the expensive step),
2. train the non-linear model,
3. draw the 3-D response surfaces and classify them (parallel slopes /
   valley / hill),
4. read off the tuning lessons,
5. let the configuration advisor recommend settings under response-time
   limits, and verify the recommendation on the real system.

Usage::

    python examples/tuning_case_study.py            # ~2-3 minutes
    FAST=1 python examples/tuning_case_study.py     # ~40 seconds, coarser
"""

import os

import numpy as np

from repro.analysis import (
    ConfigurationAdvisor,
    ScoringFunction,
    classify_surface,
    render_surface,
    sensitivity_analysis,
    sweep,
)
from repro.models import NeuralWorkloadModel
from repro.workload import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    ThreeTierWorkload,
    latin_hypercube,
)
from repro.workload.service import OUTPUT_NAMES

FAST = bool(os.environ.get("FAST"))

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 440, 580),
        ParameterRange("default_threads", 2, 22),
        ParameterRange("mfg_threads", 10, 24),
        ParameterRange("web_threads", 14, 23),
    ]
)


def main():
    # --- 1. collect ------------------------------------------------------
    n_samples = 30 if FAST else 60
    duration = 6.0 if FAST else 14.0
    workload = ThreeTierWorkload(warmup=2.0, duration=duration, seed=42)
    print(f"Collecting {n_samples} samples ({duration:.0f}s windows) ...")
    dataset = SampleCollector(workload).collect(
        latin_hypercube(SPACE, n_samples, seed=42),
        progress=lambda done, total: print(
            f"  {done}/{total}", end="\r", flush=True
        ),
    )
    print()
    dataset.y = np.maximum(dataset.y, 1e-3)

    # --- 2. model ----------------------------------------------------------
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.005, max_epochs=8000, seed=0
    )
    model.fit(dataset.x, dataset.y)
    print(f"Model trained: {model!r}")

    # --- 3 + 4. surfaces, shapes and lessons ------------------------------
    fixed = {"injection_rate": 560.0, "mfg_threads": 16.0}
    for indicator, log_scale in [
        ("manufacturing_rt", True),
        ("dealer_purchase_rt", True),
        ("effective_tps", False),
    ]:
        surface = sweep(
            model,
            indicator_index=OUTPUT_NAMES.index(indicator),
            indicator_name=indicator,
            row_param="default_threads",
            row_values=np.arange(0, 21, 2),
            col_param="web_threads",
            col_values=np.arange(14, 23),
            fixed=fixed,
        )
        shape = classify_surface(
            surface, log_scale=log_scale and bool(np.all(surface.z > 0))
        )
        print()
        print(render_surface(surface))
        print(f"shape: {shape}")

    # Per-parameter sensitivities around the operating point.
    baseline = {
        "injection_rate": 520.0,
        "default_threads": 14.0,
        "mfg_threads": 16.0,
        "web_threads": 19.0,
    }
    report = sensitivity_analysis(
        model,
        baseline,
        sweeps={
            "default_threads": np.arange(2, 23, 2),
            "web_threads": np.arange(14, 24),
            "mfg_threads": np.arange(10, 25, 2),
        },
    )
    print("\nSensitivity around the operating point (relative range, shape):")
    print(report.to_text())

    # --- 5. recommend and verify -----------------------------------------
    scoring = ScoringFunction(
        response_limits={
            "manufacturing_rt": 0.18,
            "dealer_purchase_rt": 0.14,
            "dealer_manage_rt": 0.13,
            "dealer_browse_rt": 0.115,
        }
    )
    advisor = ConfigurationAdvisor(model, scoring=scoring)
    recommendations = advisor.recommend(SPACE, levels=6, top_k=3)
    print("\nTop model-recommended configurations:")
    print(advisor.to_text(recommendations))

    best = recommendations[0].config
    verification = ThreeTierWorkload(
        warmup=2.0, duration=duration, seed=2024
    ).run(best)
    print(f"\nVerification run of the top recommendation {best}:")
    print(
        f"  effective throughput: predicted "
        f"{recommendations[0].predicted['effective_tps']:.0f} tps, "
        f"simulated {verification.indicators['effective_tps']:.0f} tps"
    )


if __name__ == "__main__":
    main()
