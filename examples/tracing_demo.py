"""Tracing demo: follow one request through every stage of the stack.

The observability subsystem end to end in one CI-fast script:

1. fit the paper's model on a quick analytic sample set and serve it,
2. share one tracer between the client and the server, so a request's
   spans — client retry attempts, HTTP handling, cache lookup, the
   micro-batcher's queue-wait/execute split — reassemble into one tree,
3. export every span to a JSONL file and aggregate it the way
   ``repro-trace summary`` does,
4. read the same trace back over ``GET /traces``,
5. show the per-stage latency histograms on ``/metrics``.

Usage::

    python examples/tracing_demo.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

from repro.models import NeuralWorkloadModel, save_model
from repro.observability import JsonlSpanExporter, Tracer
from repro.observability.cli import (
    format_summary_table,
    render_span_tree,
    stage_summary,
)
from repro.serving import ServingClient, ServingEngine, ServingError
from repro.serving.server import create_server
from repro.workload import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.analytic import AnalyticWorkloadModel

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 350, 520),
        ParameterRange("default_threads", 6, 20),
        ParameterRange("mfg_threads", 12, 20),
        ParameterRange("web_threads", 15, 22),
    ]
)

CONFIG = {
    "injection_rate": 450.0,
    "default_threads": 14.0,
    "mfg_threads": 16.0,
    "web_threads": 18.0,
}


def fit_model(seed=0):
    print(f"Collecting 20 samples (analytic backend, seed {seed}) ...")
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(SPACE, 20, seed=seed)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(8,), error_threshold=0.05, max_epochs=800, seed=seed
    )
    return model.fit(dataset.x, dataset.y)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        models_dir = Path(tmp)
        save_model(fit_model(), models_dir / "paper.json")
        spans_path = models_dir / "spans.jsonl"

        # One tracer for both halves: the client starts the trace, the
        # server joins it via the X-Trace-Id / X-Parent-Span-Id headers.
        tracer = Tracer(
            sample_rate=1.0,
            slow_threshold_s=None,
            exporter=JsonlSpanExporter(spans_path),
            seed=7,
        )
        engine = ServingEngine(models_dir, max_wait_ms=1.0, tracer=tracer)
        server = create_server(engine, port=0)
        server.serve_background()
        client = ServingClient(server.url, tracer=tracer)
        print(f"Serving at {server.url}\n")

        # --- drive traffic ----------------------------------------------
        print("One traced request through the full pipeline:")
        prediction = client.predict("paper", CONFIG)
        print(f"  predicted effective_tps = {prediction['effective_tps']:.1f}")
        client.predict("paper", CONFIG)  # repeat: served from the cache
        try:
            client.predict("absent", CONFIG)  # an error span
        except ServingError as exc:
            print(f"  expected error: HTTP {exc.status} "
                  f"(request {exc.request_id})\n")

        # --- the span tree, straight from the shared buffer -------------
        traces = tracer.buffer.traces()
        first = traces[-1]["spans"]  # oldest = the cache-miss request
        print("Span tree of the first request "
              f"(trace {first[0]['trace_id'][:8]}):")
        print(render_span_tree(first))
        names = {s["name"] for s in first}
        required = {
            "client.request", "http.request", "request.parse",
            "engine.predict", "batcher.queue_wait", "batcher.execute",
        }
        missing = required - names
        assert not missing, f"trace is missing stages: {sorted(missing)}"

        # --- the same trace over the wire: GET /traces ------------------
        payload = client._get_json("/traces?limit=10")
        print(f"\nGET /traces: {len(payload['traces'])} traces buffered, "
              f"{payload['spans_recorded']} spans recorded")
        assert any(
            t["trace_id"] == first[0]["trace_id"] for t in payload["traces"]
        ), "the traced request is retrievable over HTTP"

        # --- per-stage aggregation (what `repro-trace summary` prints) --
        exported = [
            json.loads(line)
            for line in spans_path.read_text().splitlines()
            if line.strip()
        ]
        print(f"\nPer-stage summary of {len(exported)} exported spans:")
        print(format_summary_table(stage_summary(exported)))

        # --- stage histograms on /metrics -------------------------------
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
            content_type = r.headers["Content-Type"]
            metrics_text = r.read().decode()
        bucket_lines = [
            line
            for line in metrics_text.splitlines()
            if line.startswith("repro_serving_stage_latency_seconds_bucket")
        ]
        print(f"\n/metrics ({content_type}): "
              f"{len(bucket_lines)} stage-histogram bucket lines")
        assert bucket_lines, "stage latency histograms are exported"

        server.shutdown()
        server.server_close()
        print("\nTracing demo complete.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
