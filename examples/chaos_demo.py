"""Chaos demo: serve a model while a FaultPlan corrupts it, live.

The reliability layer's whole story in one script:

1. fit the paper's model and serve it over HTTP (healthy baseline),
2. arm a deterministic ``FaultPlan`` that spikes micro-batch latency and
   corrupts the *active* artifact mid-serving,
3. watch ``/predict`` keep answering 2xx from the distilled linear
   surrogate (``"degraded": true``) while the circuit breaker opens and
   ``/healthz`` reports ``degraded``,
4. clear the faults, redeploy a good artifact, and watch the breaker's
   half-open probe close it again — full recovery to ``healthy``.

Usage::

    python examples/chaos_demo.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.models import NeuralWorkloadModel, save_model
from repro.reliability import (
    SITE_BATCHER_FLUSH,
    SITE_REGISTRY_STAT,
    FaultPlan,
    RetryPolicy,
)
from repro.serving import ServingClient, ServingEngine
from repro.serving.server import create_server
from repro.workload import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.analytic import AnalyticWorkloadModel

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 350, 520),
        ParameterRange("default_threads", 6, 20),
        ParameterRange("mfg_threads", 12, 20),
        ParameterRange("web_threads", 15, 22),
    ]
)

CONFIG = {
    "injection_rate": 450.0,
    "default_threads": 14.0,
    "mfg_threads": 16.0,
    "web_threads": 18.0,
}


def fit_model(seed=0):
    print(f"Collecting 30 samples (analytic backend, seed {seed}) ...")
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(SPACE, 30, seed=seed)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.01, max_epochs=3000, seed=seed
    )
    return model.fit(dataset.x, dataset.y)


def show(label, body, health):
    tps = body["prediction"]["effective_tps"]
    print(
        f"  {label:<28s} effective_tps={tps:8.2f}  "
        f"degraded={body['degraded']!s:<5s} source={body['source']:<16s} "
        f"health={health['status']}"
    )


def main():
    model = fit_model()
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "paper.json"
        save_model(model, artifact)

        plan = FaultPlan(seed=0)
        engine = ServingEngine(
            Path(tmp),
            faults=plan,
            breaker_min_samples=2,
            breaker_window=4,
            breaker_reset_timeout=1.0,
            max_wait_ms=0.5,
        )
        server = create_server(engine, port=0)
        server.serve_background()
        client = ServingClient(
            server.url,
            retry=RetryPolicy(max_attempts=3, base=0.05, cap=0.4, seed=0),
        )
        print(f"Serving at {server.url}\n")

        try:
            # --- 1. healthy baseline ------------------------------------
            print("Baseline (no faults):")
            show("mlp answer", client.predict_detailed("paper", CONFIG),
                 client.health())

            # --- 2-3. chaos: latency spike + corrupt the live artifact --
            print("\nArming FaultPlan: 0.05s flush latency x2, then "
                  "corrupt the active artifact ...")
            plan.add(SITE_BATCHER_FLUSH, "latency", latency_s=0.05, count=2)
            plan.add(SITE_REGISTRY_STAT, "corrupt_artifact", count=1)
            for i in range(3):
                show(f"under faults #{i + 1}",
                     client.predict_detailed("paper", CONFIG),
                     client.health())
            breakers = client.health()["breakers"]
            print(f"  breaker states: {breakers}")
            print("  metrics:",
                  {k: v for k, v in client.metrics().items()
                   if k in ("degraded_requests_total", "shed_requests_total")})

            # --- 4. recovery --------------------------------------------
            print("\nClearing faults, redeploying a good artifact, waiting "
                  "out the breaker reset timeout ...")
            plan.clear()
            save_model(model, artifact)
            time.sleep(1.2)  # > breaker_reset_timeout: allow the probe
            show("after recovery",
                 client.predict_detailed("paper", CONFIG), client.health())
            print(f"  breaker states: {client.health()['breakers']}")
        finally:
            server.shutdown()
            server.server_close()
    print("\nDone: degraded 2xx under chaos, full recovery after redeploy.")


if __name__ == "__main__":
    main()
