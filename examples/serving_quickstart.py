"""Serving quickstart: fit, persist, serve over HTTP, query, hot-swap.

The full deployment loop of the serving subsystem in one script:

1. fit the paper's model on a quick analytic sample set,
2. persist it with ``save_model`` (one JSON artifact),
3. start the HTTP server in-process and query it with ``ServingClient``,
4. show micro-batching + the prediction cache in the metrics,
5. hot-deploy a retrained artifact by overwriting the file.

Usage::

    python examples/serving_quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.models import NeuralWorkloadModel, save_model
from repro.serving import ServingClient, ServingEngine
from repro.serving.server import create_server
from repro.workload import (
    ConfigSpace,
    ParameterRange,
    SampleCollector,
    latin_hypercube,
)
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.service import OUTPUT_NAMES

SPACE = ConfigSpace(
    [
        ParameterRange("injection_rate", 350, 520),
        ParameterRange("default_threads", 6, 20),
        ParameterRange("mfg_threads", 12, 20),
        ParameterRange("web_threads", 15, 22),
    ]
)


def fit_model(seed):
    print(f"Collecting 30 samples (analytic backend, seed {seed}) ...")
    dataset = SampleCollector(AnalyticWorkloadModel()).collect(
        latin_hypercube(SPACE, 30, seed=seed)
    )
    dataset.y = np.maximum(dataset.y, 1e-3)
    model = NeuralWorkloadModel(
        hidden=(16, 8), error_threshold=0.01, max_epochs=3000, seed=seed
    )
    return model.fit(dataset.x, dataset.y)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        models_dir = Path(tmp)

        # --- 1-2. fit and persist ---------------------------------------
        save_model(fit_model(seed=0), models_dir / "paper.json")

        # --- 3. serve and query over HTTP -------------------------------
        server = create_server(
            ServingEngine(models_dir, max_wait_ms=1.0), port=0
        )
        server.serve_background()
        client = ServingClient(server.url)
        print(f"\nServing {client.models()} at {server.url}")

        config = {
            "injection_rate": 450,
            "default_threads": 14,
            "mfg_threads": 16,
            "web_threads": 18,
        }
        prediction = client.predict("paper", config)
        print("One configuration over HTTP:")
        for name in OUTPUT_NAMES:
            unit = "tps" if name == "effective_tps" else "s"
            print(f"  {name:22s} {prediction[name]:8.3f} {unit}")

        # --- 4. a small sweep, run three times: repeats hit the cache ---
        sweep = [dict(config, default_threads=t) for t in (8, 12, 16, 20)]
        for _ in range(3):
            client.predict_many("paper", sweep)
        metrics = client.metrics()
        print(
            f"\nAfter a 12-query sweep: cache hit rate "
            f"{metrics['cache']['hit_rate']:.0%}, "
            f"{metrics['predictions_total']} predictions "
            f"in {metrics['requests_total']} requests"
        )

        # --- 5. hot-swap a retrained artifact ---------------------------
        print("\nRetraining and overwriting paper.json (no restart) ...")
        save_model(fit_model(seed=7), models_dir / "paper.json")
        swapped = client.predict("paper", config)
        delta = swapped["effective_tps"] - prediction["effective_tps"]
        print(
            f"Same query after hot reload: effective_tps "
            f"{swapped['effective_tps']:.2f} ({delta:+.2f} vs old artifact)"
        )

        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
