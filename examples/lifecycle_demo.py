"""Continuous-learning demo: record → drift → retrain → promote → rollback.

The whole ``repro-lifecycle`` loop on a tiny configuration, end to end and
deterministic — this is also what the CI lifecycle smoke runs:

1. train a baseline characterization model on the analytic backend's
   smooth operating window (injection 150-400 tps) and deploy it into a
   registry directory;
2. drive *shifted* traffic (window moved up 150 tps, measured indicators
   rescaled 1.2x) through the driver, recording paired
   (prediction, measurement) observations into a JSONL log;
3. ``check-drift`` — both signals trip: the configuration stream scores
   far outside the deployed scaler statistics and the harmonic-mean
   residual error exceeds the loose-fit threshold;
4. ``retrain --promote`` — a warm-started candidate passes the
   per-indicator validation gate and is atomically promoted (the
   pre-existing deployment is first adopted as version 1, the candidate
   becomes version 2);
5. ``rollback`` — one call restores version 1.

Usage::

    python examples/lifecycle_demo.py
"""

import contextlib
import io
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.lifecycle.cli import main as lifecycle
from repro.models.neural import NeuralWorkloadModel
from repro.models.persistence import save_model
from repro.workload.analytic import AnalyticWorkloadModel
from repro.workload.service import WorkloadConfig


def train_baseline(registry: Path) -> None:
    print("Training the baseline on injection window 150-400 tps ...")
    rng = np.random.default_rng(7)
    backend = AnalyticWorkloadModel()
    xs, ys = [], []
    for _ in range(64):
        config = WorkloadConfig(
            injection_rate=float(rng.uniform(150, 400)),
            default_threads=int(rng.integers(12, 28)),
            mfg_threads=int(rng.integers(12, 28)),
            web_threads=int(rng.integers(12, 28)),
        )
        xs.append(config.as_vector())
        ys.append(backend.evaluate_vector(config))
    model = NeuralWorkloadModel(
        hidden=(12,), error_threshold=0.002, max_epochs=8000, seed=7
    )
    model.fit(np.array(xs), np.array(ys))
    save_model(model, registry / "paper.json")
    print(f"  deployed after {model.total_epochs_} epochs\n")


def run(step: str, argv: list) -> dict:
    print(f"$ repro-lifecycle {' '.join(argv)}")
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = lifecycle(argv)
    output = buffer.getvalue()
    print(output)
    if code != 0:
        print(f"FAILED: {step} exited {code}")
        sys.exit(1)
    return json.loads(output)


def expect(condition: bool, what: str) -> None:
    if not condition:
        print(f"FAILED: expected {what}")
        sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        registry = Path(tmp) / "registry"
        registry.mkdir()
        store = str(Path(tmp) / "store")
        log = str(Path(tmp) / "observations.jsonl")
        train_baseline(registry)

        recorded = run(
            "record",
            [
                "record", "--models-dir", str(registry), "--log", log,
                "--samples", "96", "--seed", "1",
                "--rate-min", "150", "--rate-max", "400",
                "--rate-shift", "150",
                "--threads-min", "12", "--threads-max", "27",
                "--indicator-scale", "1.2",
            ],
        )
        expect(recorded["recorded"] == 96, "96 recorded observations")

        drift = run(
            "check-drift",
            ["check-drift", "--models-dir", str(registry), "--log", log],
        )
        expect(drift["drifted"], "the drift verdict to trip")

        cycle = run(
            "retrain",
            [
                "retrain", "--models-dir", str(registry),
                "--store-dir", store, "--log", log,
                "--seed", "3", "--promote",
            ],
        )
        expect(cycle["gate"]["passed"], "the validation gate to pass")
        expect(cycle["promoted"], "the candidate to be promoted")

        rollback = run(
            "rollback",
            ["rollback", "--models-dir", str(registry), "--store-dir", store],
        )
        expect(rollback["restored_version"] == 1, "rollback to version 1")

        status = run(
            "status",
            [
                "status", "--models-dir", str(registry),
                "--store-dir", store, "--log", log,
            ],
        )
        expect(
            status["models"]["paper"]["promoted_version"] == 1,
            "the baseline to be promoted again",
        )
        print("Lifecycle loop complete: drift detected, candidate retrained "
              "and promoted, baseline restored by rollback.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
